//! Per-cell state: static process variation and dynamic threshold voltage.

use crate::params::PhysicsParams;
use crate::rng::{cell_normal, cell_uniform, Channel, SplitMix64};
use crate::units::Volts;
use crate::variation::Uniform;

/// A wear-activated early-eraser trap.
///
/// Once the cell's wear exceeds `activation_kcycles`, its erase time is
/// multiplied by `factor` (< 1): trap-assisted tunneling makes the worn cell
/// erase anomalously fast. This is the physical mechanism behind the paper's
/// observation (Fig. 10) that stressed "bad" cells are mischaracterized as
/// "good" much more often than the reverse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyTrap {
    /// Wear level at which the trap becomes conductive.
    pub activation_kcycles: f64,
    /// Erase-time multiplier once active (in `(0, 1]`).
    pub factor: f64,
}

/// Static (lifetime-constant) properties of one cell, fixed at manufacture.
///
/// Derived as a pure function of `(chip_seed, cell_index)` so that the same
/// simulated chip always has the same cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStatics {
    /// Standard-normal deviate of the log-normal erase-speed variation.
    pub erase_z: f64,
    /// Extra slowdown if this cell is a straggler (`1 + extra` multiplier).
    pub straggler_extra: Option<f64>,
    /// Early-eraser trap, if this cell has one.
    pub early: Option<EarlyTrap>,
    /// Fresh erased-state threshold voltage (V).
    pub vth_erased0: f64,
    /// Programmed-state threshold voltage (V).
    pub vth_prog0: f64,
    /// Time to fully program this cell from erased (µs).
    pub prog_time_us: f64,
    /// Relative retention (charge-loss) rate deviation, standard-normal.
    pub retention_z: f64,
    /// Wear susceptibility: the cell's effective wear is `susceptibility ×
    /// raw wear`. Most cells sit near 1; a calibrated minority of weak
    /// responders barely ages (see
    /// [`SusceptibilityTable`](crate::calibration::SusceptibilityTable)).
    pub susceptibility: f64,
}

impl CellStatics {
    /// Derives the statics of cell `cell_index` on chip `chip_seed`.
    #[must_use]
    pub fn derive(params: &PhysicsParams, chip_seed: u64, cell_index: u64) -> Self {
        let straggler_extra = if cell_uniform(chip_seed, cell_index, Channel::StragglerSelect)
            < params.tails.straggler_prob
        {
            Some(
                params.tails.straggler_max_extra
                    * cell_uniform(chip_seed, cell_index, Channel::StragglerMagnitude),
            )
        } else {
            None
        };
        let early = if cell_uniform(chip_seed, cell_index, Channel::EarlySelect)
            < params.tails.early_prob_cap
        {
            let span = params.tails.early_activation_span_kcycles;
            let factor = Uniform::new(params.tails.early_factor_lo, params.tails.early_factor_hi)
                .at(cell_uniform(chip_seed, cell_index, Channel::EarlyMagnitude));
            Some(EarlyTrap {
                activation_kcycles: span
                    * cell_uniform(chip_seed, cell_index, Channel::EarlyActivation),
                factor,
            })
        } else {
            None
        };
        Self {
            erase_z: cell_normal(chip_seed, cell_index, Channel::EraseSpeed),
            straggler_extra,
            early,
            vth_erased0: params.vth_erased.at(cell_normal(
                chip_seed,
                cell_index,
                Channel::VthErased,
            )),
            vth_prog0: params.vth_programmed.at(cell_normal(
                chip_seed,
                cell_index,
                Channel::VthProgrammed,
            )),
            prog_time_us: params.prog_full_time_us.at(cell_normal(
                chip_seed,
                cell_index,
                Channel::ProgTime,
            )),
            retention_z: cell_normal(chip_seed, cell_index, Channel::Retention),
            susceptibility: params.susceptibility.at(cell_uniform(
                chip_seed,
                cell_index,
                Channel::Susceptibility,
            )),
        }
    }

    /// Log-domain straggler slowdown: `ln(1 + extra)`, or `0.0` for the
    /// non-straggler majority. The lane encoding used by the erase kernels —
    /// adding it in log space is exactly multiplying by `1 + extra`.
    #[must_use]
    pub fn ln_straggler(&self) -> f64 {
        self.straggler_extra.map_or(0.0, |extra| (1.0 + extra).ln())
    }

    /// Early-trap activation threshold in kcycles, or `+∞` for cells without
    /// a trap (an infinite threshold never activates — branch-free lanes).
    #[must_use]
    pub fn early_activation_kcycles(&self) -> f64 {
        self.early
            .map_or(f64::INFINITY, |trap| trap.activation_kcycles)
    }

    /// Log-domain early-trap speedup: `ln(factor)`, or `0.0` for cells
    /// without a trap.
    #[must_use]
    pub fn ln_early_factor(&self) -> f64 {
        self.early.map_or(0.0, |trap| trap.factor.ln())
    }
}

/// Dynamic state of one cell: its threshold voltage and accumulated wear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellState {
    /// Current threshold voltage (V). Below `vref` the cell reads `1`
    /// (erased / conducting); above, it reads `0` (programmed).
    pub vth: f64,
    /// Accumulated oxide wear, in equivalent full P/E cycles. Monotone
    /// non-decreasing over the cell's life — wear is irreversible.
    pub wear_cycles: f64,
}

impl CellState {
    /// A factory-fresh cell: erased, zero wear.
    #[must_use]
    pub fn fresh(statics: &CellStatics) -> Self {
        Self {
            vth: statics.vth_erased0,
            wear_cycles: 0.0,
        }
    }

    /// Wear expressed in kcycles (the unit the calibration tables use).
    #[must_use]
    pub fn wear_kcycles(&self) -> f64 {
        self.wear_cycles / 1000.0
    }

    /// Effective wear (kcycles) seen by this cell's oxide: raw wear scaled
    /// by the cell's susceptibility.
    #[must_use]
    pub fn effective_wear_kcycles(&self, statics: &CellStatics) -> f64 {
        self.wear_kcycles() * statics.susceptibility
    }

    /// Erased-state threshold voltage at the current wear (worn cells erase
    /// shallower).
    #[must_use]
    pub fn vth_erased_now(&self, params: &PhysicsParams, statics: &CellStatics) -> f64 {
        statics.vth_erased0
            + params.erased_vth_shift_per_kcycle * self.effective_wear_kcycles(statics)
    }

    /// Programmed-state threshold voltage at the current wear.
    #[must_use]
    pub fn vth_prog_now(&self, params: &PhysicsParams, statics: &CellStatics) -> f64 {
        statics.vth_prog0
            + params.programmed_vth_shift_per_kcycle * self.effective_wear_kcycles(statics)
    }

    /// Noise-free logical value: `true` (reads 1) if erased.
    #[must_use]
    pub fn ideal_bit(&self, params: &PhysicsParams) -> bool {
        self.vth < params.vref.get()
    }

    /// Margin (V) between the read reference and the threshold voltage.
    /// Positive margins read 1 robustly; near-zero margins read noisily.
    #[must_use]
    pub fn read_margin(&self, params: &PhysicsParams) -> Volts {
        Volts::new(params.vref.get() - self.vth)
    }
}

/// Senses the cell once: returns `true` for logic 1 (erased / conducting).
///
/// A fresh noise draw is taken from `rng`, so repeated reads of a cell whose
/// threshold voltage sits near the reference may disagree — exactly the
/// behaviour the paper's N-read majority vote (`AnalyzeSegment`) targets.
pub fn sense(params: &PhysicsParams, state: &CellState, rng: &mut SplitMix64) -> bool {
    let noise = params.read_noise_sigma * rng.normal();
    state.vth + noise < params.vref.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PhysicsParams;

    fn setup() -> (PhysicsParams, CellStatics) {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 0xDEAD_BEEF, 7);
        (params, statics)
    }

    #[test]
    fn statics_are_deterministic() {
        let params = PhysicsParams::msp430_like();
        let a = CellStatics::derive(&params, 1, 2);
        let b = CellStatics::derive(&params, 1, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_cell_reads_one() {
        let (params, statics) = setup();
        let cell = CellState::fresh(&statics);
        assert!(cell.ideal_bit(&params));
        assert_eq!(cell.wear_cycles, 0.0);
    }

    #[test]
    fn vth_levels_ordered() {
        let (params, statics) = setup();
        assert!(statics.vth_erased0 < params.vref.get());
        assert!(statics.vth_prog0 > params.vref.get());
    }

    #[test]
    fn wear_shifts_erased_level_up() {
        let (params, statics) = setup();
        let fresh = CellState::fresh(&statics);
        let worn = CellState {
            vth: statics.vth_erased0,
            wear_cycles: 50_000.0,
        };
        assert!(worn.vth_erased_now(&params, &statics) > fresh.vth_erased_now(&params, &statics));
    }

    #[test]
    fn sense_is_reliable_far_from_vref() {
        let (params, statics) = setup();
        let cell = CellState::fresh(&statics);
        let mut rng = SplitMix64::new(9);
        assert!((0..100).all(|_| sense(&params, &cell, &mut rng)));
        let programmed = CellState {
            vth: statics.vth_prog0,
            wear_cycles: 0.0,
        };
        assert!((0..100).all(|_| !sense(&params, &programmed, &mut rng)));
    }

    #[test]
    fn sense_is_noisy_at_the_boundary() {
        let (params, statics) = setup();
        let boundary = CellState {
            vth: params.vref.get(),
            wear_cycles: 0.0,
        };
        let mut rng = SplitMix64::new(10);
        let ones = (0..1000)
            .filter(|_| sense(&params, &boundary, &mut rng))
            .count();
        assert!((300..700).contains(&ones), "expected ~50% ones, got {ones}");
        let _ = statics;
    }

    #[test]
    fn tail_fractions_roughly_match_params() {
        let params = PhysicsParams::msp430_like();
        let n = 20_000u64;
        let mut stragglers = 0;
        let mut earlies = 0;
        for i in 0..n {
            let s = CellStatics::derive(&params, 0xFEED, i);
            if s.straggler_extra.is_some() {
                stragglers += 1;
            }
            if s.early.is_some() {
                earlies += 1;
            }
        }
        let sf = stragglers as f64 / n as f64;
        let ef = earlies as f64 / n as f64;
        assert!(
            (sf - params.tails.straggler_prob).abs() < 0.005,
            "straggler frac {sf}"
        );
        assert!(
            (ef - params.tails.early_prob_cap).abs() < 0.01,
            "early frac {ef}"
        );
    }

    #[test]
    fn read_margin_sign() {
        let (params, statics) = setup();
        let erased = CellState::fresh(&statics);
        assert!(erased.read_margin(&params).get() > 0.0);
        let programmed = CellState {
            vth: statics.vth_prog0,
            wear_cycles: 0.0,
        };
        assert!(programmed.read_margin(&params).get() < 0.0);
    }
}
