//! Program (source-side hot-carrier injection) dynamics, including partial
//! program.

use crate::cell::{CellState, CellStatics};
use crate::params::PhysicsParams;
use crate::rng::SplitMix64;

/// Per-operation noise on the programmed threshold voltage, volts.
///
/// Programming is a feedback-verified operation on real parts, so the
/// op-to-op spread is small compared to static variation.
pub const PROG_OP_NOISE_SIGMA: f64 = 0.03;

/// Fully programs the cell (drives its threshold voltage to the programmed
/// level for its current wear, with a small per-operation deviation).
///
/// Wear is accrued in proportion to the charge actually injected: programming
/// an erased cell costs [`WearWeights::program`](crate::params::WearWeights)
/// cycles, re-programming an already-programmed cell costs almost nothing.
pub fn apply_program(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    rng: &mut SplitMix64,
) {
    apply_program_with_z(params, statics, state, rng.normal());
}

/// [`apply_program`] with the per-operation noise deviate supplied by the
/// caller — the entry point for lane kernels whose deviates come from a
/// counter-based stream instead of a serial generator.
pub fn apply_program_with_z(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    z: f64,
) {
    let target = state.vth_prog_now(params, statics) + PROG_OP_NOISE_SIGMA * z;
    accrue_program_wear(params, statics, state, target);
    state.vth = state.vth.max(target);
}

/// Applies a program pulse of `duration_us`, potentially aborted before the
/// cell reaches the programmed level (a *partial program*).
///
/// The threshold voltage rises linearly over the cell's full-program time.
/// Returns `true` if the cell ended above the read reference (reads 0).
pub fn apply_partial_program(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    duration_us: f64,
    rng: &mut SplitMix64,
) -> bool {
    debug_assert!(duration_us >= 0.0, "negative pulse duration");
    let full_target = state.vth_prog_now(params, statics) + PROG_OP_NOISE_SIGMA * rng.normal();
    let vth_start_level = state.vth_erased_now(params, statics);
    let span = (full_target - vth_start_level).max(1e-9);
    let slope = span / effective_prog_time_us(params, statics, state).max(1e-9);
    let target = (state.vth + slope * duration_us).min(full_target);
    accrue_program_wear(params, statics, state, target);
    state.vth = state.vth.max(target);
    !state.ideal_bit(params)
}

/// Wear-adjusted full-program time: trap-assisted injection makes worn
/// cells program faster (floored at 30 % of the fresh time).
#[must_use]
pub fn effective_prog_time_us(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &CellState,
) -> f64 {
    let k = state.effective_wear_kcycles(statics);
    statics.prog_time_us * (1.0 - params.prog_speedup_per_kcycle * k).max(0.3)
}

fn accrue_program_wear(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    target: f64,
) {
    let vth_erased = state.vth_erased_now(params, statics);
    let vth_prog = state.vth_prog_now(params, statics);
    let span = (vth_prog - vth_erased).max(1e-9);
    let injected = ((target - state.vth) / span).clamp(0.0, 1.0);
    state.wear_cycles += params.wear.program * injected;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellStatics;
    use crate::params::PhysicsParams;

    fn setup(idx: u64) -> (PhysicsParams, CellStatics, CellState, SplitMix64) {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 0xAB, idx);
        let state = CellState::fresh(&statics);
        (params, statics, state, SplitMix64::new(idx))
    }

    #[test]
    fn program_flips_bit_to_zero() {
        let (params, statics, mut state, mut rng) = setup(1);
        assert!(state.ideal_bit(&params));
        apply_program(&params, &statics, &mut state, &mut rng);
        assert!(!state.ideal_bit(&params));
    }

    #[test]
    fn program_from_erased_costs_program_wear() {
        let (params, statics, mut state, mut rng) = setup(2);
        apply_program(&params, &statics, &mut state, &mut rng);
        assert!((state.wear_cycles - params.wear.program).abs() < 0.02);
    }

    #[test]
    fn reprogramming_costs_almost_nothing() {
        let (params, statics, mut state, mut rng) = setup(3);
        apply_program(&params, &statics, &mut state, &mut rng);
        let w1 = state.wear_cycles;
        apply_program(&params, &statics, &mut state, &mut rng);
        assert!(
            state.wear_cycles - w1 < 0.05,
            "rewear {}",
            state.wear_cycles - w1
        );
    }

    #[test]
    fn partial_program_short_pulse_stays_erased() {
        let (params, statics, mut state, mut rng) = setup(4);
        let flipped = apply_partial_program(
            &params,
            &statics,
            &mut state,
            statics.prog_time_us * 0.05,
            &mut rng,
        );
        assert!(!flipped);
        assert!(state.ideal_bit(&params));
        assert!(state.vth > statics.vth_erased0, "vth should have moved up");
    }

    #[test]
    fn partial_program_full_duration_equals_program() {
        let (params, statics, mut state, mut rng) = setup(5);
        let flipped = apply_partial_program(
            &params,
            &statics,
            &mut state,
            statics.prog_time_us * 2.0,
            &mut rng,
        );
        assert!(flipped);
        assert!(!state.ideal_bit(&params));
    }

    #[test]
    fn repeated_partial_pulses_accumulate() {
        let (params, statics, mut state, mut rng) = setup(6);
        let step = statics.prog_time_us * 0.3;
        let mut crossed = false;
        for _ in 0..5 {
            crossed = apply_partial_program(&params, &statics, &mut state, step, &mut rng);
        }
        assert!(
            crossed,
            "five 0.3x pulses must cumulatively program the cell"
        );
    }

    #[test]
    fn worn_cells_partially_program_faster() {
        let (params, statics, _, mut rng) = setup(8);
        let mut fresh = CellState::fresh(&statics);
        let mut worn = CellState::fresh(&statics);
        worn.wear_cycles = 50_000.0;
        worn.vth = worn.vth_erased_now(&params, &statics);
        let pulse = statics.prog_time_us * 0.2;
        apply_partial_program(&params, &statics, &mut fresh, pulse, &mut rng);
        apply_partial_program(&params, &statics, &mut worn, pulse, &mut rng);
        let fresh_progress = fresh.vth - statics.vth_erased0;
        let worn_progress = worn.vth - worn.vth_erased_now(&params, &statics);
        assert!(
            worn_progress > fresh_progress * 1.1,
            "worn {worn_progress} vs fresh {fresh_progress}"
        );
        assert!(
            effective_prog_time_us(&params, &statics, &worn)
                < effective_prog_time_us(&params, &statics, &fresh)
        );
    }

    #[test]
    fn vth_never_exceeds_programmed_level_by_much() {
        let (params, statics, mut state, mut rng) = setup(7);
        for _ in 0..10 {
            apply_program(&params, &statics, &mut state, &mut rng);
        }
        let limit = state.vth_prog_now(&params, &statics) + 0.2;
        assert!(state.vth <= limit);
    }
}
