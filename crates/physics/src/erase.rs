//! Erase (Fowler–Nordheim tunneling) dynamics, including partial erase.
//!
//! The observable Flashmark exploits: the time a cell takes to cross the read
//! reference during an erase grows with accumulated wear. [`t_cross_us`]
//! gives that time for a cell starting from the fully-programmed level;
//! [`apply_erase`] advances a cell's threshold voltage through an erase pulse
//! of a given effective duration (possibly aborted early — a *partial* erase).

use crate::calibration::EraseCalibration;
use crate::cell::{CellState, CellStatics};
use crate::params::{PhysicsParams, DEFAULT_ERASE_DIST_GRID_KCYCLES};

/// Bucket index of effective wear `kcycles` on a quantization grid of
/// `grid_kcycles`: the nearest grid point. Shared by every path that touches
/// the erase-distribution table, cached or not, so all of them agree on the
/// quantized key bit-for-bit.
#[must_use]
pub fn wear_bucket(kcycles: f64, grid_kcycles: f64) -> usize {
    (kcycles / grid_kcycles).round() as usize
}

/// A quantized, wear-keyed lookup table for
/// [`EraseCalibration::distribution`].
///
/// The per-pulse hot loop needs the erase-time distribution once per cell
/// per pulse (4096 evaluations per pulse, up to 100 K pulses per imprint),
/// and per-cell susceptibility scaling makes almost every effective-wear key
/// unique — an exact-key memo never hits on a worn segment. Instead the
/// effective wear is rounded to the nearest multiple of
/// `grid_kcycles` ([`PhysicsParams::erase_dist_grid_kcycles`], a committed
/// parameter) and the table stores `(ln median, sigma)` per bucket as two
/// dense `Vec<f64>` lanes, extended on demand. At the default 0.25-kcycle
/// grid the full 0–115 kcycle range is ~460 buckets (≈ 7 KB) — L1-resident.
///
/// **Determinism contract:** the cached accessors are bit-identical to the
/// uncached functions ([`t_cross_us`] etc.), because *both* quantize through
/// [`wear_bucket`] before consulting the calibration. The quantization grid
/// is therefore part of the physical parameter record, not a private cache
/// detail.
#[derive(Debug, Clone)]
pub struct EraseDistCache {
    grid_kcycles: f64,
    ln_median: Vec<f64>,
    sigma: Vec<f64>,
    monotone: bool,
}

impl Default for EraseDistCache {
    fn default() -> Self {
        Self::new(DEFAULT_ERASE_DIST_GRID_KCYCLES)
    }
}

impl EraseDistCache {
    /// Creates an empty table over the given quantization grid (kcycles).
    ///
    /// # Panics
    ///
    /// Panics unless `grid_kcycles` is positive and finite.
    #[must_use]
    pub fn new(grid_kcycles: f64) -> Self {
        assert!(
            grid_kcycles > 0.0 && grid_kcycles.is_finite(),
            "erase-distribution grid must be positive and finite"
        );
        Self {
            grid_kcycles,
            ln_median: Vec::new(),
            sigma: Vec::new(),
            monotone: true,
        }
    }

    /// The quantization grid this table was built on, in kcycles.
    #[must_use]
    pub fn grid_kcycles(&self) -> f64 {
        self.grid_kcycles
    }

    /// Extends the table so every bucket up to and including `max_bucket` is
    /// filled. Lane kernels call this once before a loop so the loop body is
    /// pure reads.
    pub fn ensure(&mut self, cal: &EraseCalibration, max_bucket: usize) {
        while self.ln_median.len() <= max_bucket {
            let kq = self.ln_median.len() as f64 * self.grid_kcycles;
            let dist = cal.distribution(kq);
            let ln_median = dist.median.ln();
            if self.ln_median.last().is_some_and(|&prev| ln_median < prev) {
                self.monotone = false;
            }
            self.ln_median.push(ln_median);
            self.sigma.push(dist.sigma);
        }
    }

    /// The `(ln median, sigma)` lanes filled so far, indexed by bucket.
    #[must_use]
    pub fn tables(&self) -> (&[f64], &[f64]) {
        (&self.ln_median, &self.sigma)
    }

    /// Whether the `ln median` lane is non-decreasing in wear over the filled
    /// range. [`EraseCalibration::from_anchors`] guarantees this, but the
    /// frontier-pruned max kernels in [`crate::arena`] re-check it here and
    /// fall back to a full scan if a hand-built calibration violates it.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        self.monotone
    }

    /// `(ln median, sigma)` for one bucket, filling the table as needed.
    fn entry(&mut self, cal: &EraseCalibration, bucket: usize) -> (f64, f64) {
        self.ensure(cal, bucket);
        (self.ln_median[bucket], self.sigma[bucket])
    }
}

/// Result of applying an erase pulse to one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraseOutcome {
    /// The cell's threshold voltage ended below the read reference
    /// (it now reads 1).
    pub crossed: bool,
    /// The cell reached its fully-erased level (further pulse time would not
    /// change its state).
    pub completed: bool,
}

/// Log-domain crossing time: the canonical erase-time formula shared by the
/// scalar accessors and the chunked lane kernels in [`crate::arena`].
///
/// `ln t = ln median(k_q) + sigma(k_q)·z + ln(1 + straggler) +
/// [k ≥ activation]·ln factor` — one `exp` at the end of whatever kernel
/// consumes it. The distribution terms are evaluated at the *quantized* wear
/// `k_q`; the early-trap activation compares against the *raw* effective
/// wear `kcycles`, preserving the exact activation threshold.
#[inline]
#[must_use]
pub fn ln_t_cross(
    ln_median: f64,
    sigma: f64,
    erase_z: f64,
    ln_straggler: f64,
    early_activation_kcycles: f64,
    ln_early_factor: f64,
    kcycles: f64,
) -> f64 {
    let early = if kcycles >= early_activation_kcycles {
        ln_early_factor
    } else {
        0.0
    };
    ln_median + sigma * erase_z + ln_straggler + early
}

/// [`ln_t_cross`] with the lane terms unpacked from a [`CellStatics`].
#[inline]
fn ln_t_cross_statics(ln_median: f64, sigma: f64, statics: &CellStatics, kcycles: f64) -> f64 {
    ln_t_cross(
        ln_median,
        sigma,
        statics.erase_z,
        statics.ln_straggler(),
        statics.early_activation_kcycles(),
        statics.ln_early_factor(),
        kcycles,
    )
}

/// Static time (µs) for this cell to cross the read reference during an
/// erase, starting from the fully-programmed level, at `wear_cycles` of wear.
///
/// This excludes per-pulse jitter (the caller folds jitter into the pulse's
/// effective duration, see [`crate::noise::PulseNoise`]). The calibration
/// distribution is evaluated at the effective wear quantized to
/// [`PhysicsParams::erase_dist_grid_kcycles`].
#[must_use]
pub fn t_cross_us(params: &PhysicsParams, statics: &CellStatics, wear_cycles: f64) -> f64 {
    // Heterogeneous wear response: weak responders age at a fraction of the
    // applied stress (the source of the paper's bad→good extraction errors).
    let k = wear_cycles * statics.susceptibility / 1000.0;
    let grid = params.erase_dist_grid_kcycles;
    let kq = wear_bucket(k, grid) as f64 * grid;
    let dist = params.erase_cal.distribution(kq);
    ln_t_cross_statics(dist.median.ln(), dist.sigma, statics, k).exp()
}

/// [`t_cross_us`] with the calibration lookup served from the quantized
/// table. Bit-identical to the uncached version.
#[must_use]
pub fn t_cross_us_cached(
    params: &PhysicsParams,
    statics: &CellStatics,
    wear_cycles: f64,
    cache: &mut EraseDistCache,
) -> f64 {
    ln_t_cross_us_cached(params, statics, wear_cycles, cache).exp()
}

/// Log-domain [`t_cross_us_cached`]: the scalar reference for the lane
/// kernels in [`crate::arena`], which reduce these values with `max` and
/// take a single `exp` at the end. `t_cross_us_cached` is exactly
/// `ln_t_cross_us_cached(..).exp()`.
#[must_use]
pub fn ln_t_cross_us_cached(
    params: &PhysicsParams,
    statics: &CellStatics,
    wear_cycles: f64,
    cache: &mut EraseDistCache,
) -> f64 {
    debug_assert!(
        cache.grid_kcycles.to_bits() == params.erase_dist_grid_kcycles.to_bits(),
        "cache grid does not match params grid"
    );
    let k = wear_cycles * statics.susceptibility / 1000.0;
    let bucket = wear_bucket(k, cache.grid_kcycles);
    let (ln_median, sigma) = cache.entry(&params.erase_cal, bucket);
    ln_t_cross_statics(ln_median, sigma, statics, k)
}

/// Time (µs) for this cell to reach its *fully erased* level from the
/// programmed level — longer than [`t_cross_us`] because the threshold keeps
/// falling after crossing the read reference.
#[must_use]
pub fn t_full_us(params: &PhysicsParams, statics: &CellStatics, state: &CellState) -> f64 {
    let t_cross = t_cross_us(params, statics, state.wear_cycles);
    t_full_from_t_cross(params, statics, state, t_cross)
}

/// [`t_full_us`] with the calibration lookup memoized in `cache`.
/// Bit-identical to the uncached version.
#[must_use]
pub fn t_full_us_cached(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &CellState,
    cache: &mut EraseDistCache,
) -> f64 {
    let t_cross = t_cross_us_cached(params, statics, state.wear_cycles, cache);
    t_full_from_t_cross(params, statics, state, t_cross)
}

/// Shared tail of the `t_full` computation once `t_cross` is in hand.
fn t_full_from_t_cross(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &CellState,
    t_cross: f64,
) -> f64 {
    let vth_prog = state.vth_prog_now(params, statics);
    let vth_end = state.vth_erased_now(params, statics);
    let span_to_ref = vth_prog - params.vref.get();
    let span_total = vth_prog - vth_end;
    if span_to_ref <= 0.0 {
        return t_cross;
    }
    t_cross * (span_total / span_to_ref)
}

/// Applies an erase pulse with effective duration `effective_us` to the cell.
///
/// The threshold voltage descends linearly from the programmed level toward
/// the wear-shifted erased level; the slope is set so that a cell starting
/// fully programmed crosses the read reference exactly at its
/// [`t_cross_us`]. Cells that start partially erased finish proportionally
/// sooner. Wear is accrued in proportion to the tunneling activity actually
/// performed (see [`crate::params::WearWeights`]).
pub fn apply_erase(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    effective_us: f64,
) -> EraseOutcome {
    let t_full = t_full_us(params, statics, state);
    apply_erase_with_t_full(params, statics, state, effective_us, t_full)
}

/// [`apply_erase`] with the calibration lookup memoized in `cache`.
/// Bit-identical to the uncached version.
pub fn apply_erase_cached(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    effective_us: f64,
    cache: &mut EraseDistCache,
) -> EraseOutcome {
    let t_full = t_full_us_cached(params, statics, state, cache);
    apply_erase_with_t_full(params, statics, state, effective_us, t_full)
}

/// Shared erase-pulse body once the cell's full-erase time is in hand.
fn apply_erase_with_t_full(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    effective_us: f64,
    t_full: f64,
) -> EraseOutcome {
    debug_assert!(effective_us >= 0.0, "negative pulse duration");
    let was_programmed = !state.ideal_bit(params);
    let vth_prog = state.vth_prog_now(params, statics);
    let vth_end = state.vth_erased_now(params, statics);
    let t_full = t_full.max(1e-9);
    let slope = (vth_prog - vth_end).max(0.0) / t_full; // volts per µs

    let start_vth = state.vth;
    let new_vth = (start_vth - slope * effective_us).max(vth_end);

    // Wear accrues in proportion to the fraction of a full erase performed.
    let fraction = (effective_us / t_full).min(1.0);
    let weight = if was_programmed {
        params.wear.erase
    } else {
        params.wear.erase_only
    };
    state.wear_cycles += weight * fraction;
    state.vth = new_vth;

    EraseOutcome {
        crossed: new_vth < params.vref.get(),
        completed: new_vth <= vth_end + 1e-12,
    }
}

/// Erase-rate acceleration factor at die temperature `temp_c` relative to
/// the calibration reference: Fowler–Nordheim tunneling runs faster when
/// hot, so a pulse of nominal duration `t` acts like `t × factor`.
#[must_use]
pub fn erase_temp_factor(params: &PhysicsParams, temp_c: f64) -> f64 {
    const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;
    // The activation energy is a disable-sentinel at (or below) zero; an
    // epsilon band avoids an exact f64 comparison.
    if params.erase_activation_energy_ev <= f64::EPSILON {
        return 1.0;
    }
    let t = temp_c + 273.15;
    let t_ref = params.ref_temp_c + 273.15;
    (params.erase_activation_energy_ev / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
}

/// Estimated time (µs) at which **all** `n_cells` cells at uniform wear
/// `wear_cycles` would read erased — the quantity the paper's Fig. 4 reports
/// per stress level. Includes straggler headroom.
#[must_use]
pub fn all_erased_estimate_us(params: &PhysicsParams, wear_cycles: f64, n_cells: usize) -> f64 {
    params.erase_cal.all_erased_estimate_us(
        wear_cycles / 1000.0,
        n_cells,
        params.tails.straggler_max_extra,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellStatics, EarlyTrap};
    use crate::params::PhysicsParams;
    use crate::program::apply_program;
    use crate::rng::SplitMix64;

    fn programmed_cell(params: &PhysicsParams, seed: u64, idx: u64) -> (CellStatics, CellState) {
        let statics = CellStatics::derive(params, seed, idx);
        let mut state = CellState::fresh(&statics);
        let mut rng = SplitMix64::new(1);
        apply_program(params, &statics, &mut state, &mut rng);
        (statics, state)
    }

    #[test]
    fn t_cross_grows_with_wear() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 3, 3);
        let mut prev = 0.0;
        for w in [0.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0] {
            let t = t_cross_us(&params, &statics, w);
            assert!(t > prev, "t_cross not increasing at wear {w}");
            prev = t;
        }
    }

    #[test]
    fn fresh_cells_cross_in_paper_window() {
        // Fig. 4: fresh cells transition between ~18 µs and ~35 µs.
        let params = PhysicsParams::msp430_like();
        let mut min_t = f64::INFINITY;
        let mut max_t: f64 = 0.0;
        for i in 0..4096u64 {
            let s = CellStatics::derive(&params, 0x5EED, i);
            let t = t_cross_us(&params, &s, 0.0);
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        assert!((12.0..=22.0).contains(&min_t), "min {min_t}");
        assert!((24.0..=40.0).contains(&max_t), "max {max_t}");
    }

    #[test]
    fn full_pulse_erases_programmed_cell() {
        let params = PhysicsParams::msp430_like();
        let (statics, mut state) = programmed_cell(&params, 9, 1);
        let t_full = t_full_us(&params, &statics, &state);
        let out = apply_erase(&params, &statics, &mut state, t_full * 1.01);
        assert!(out.crossed && out.completed);
        assert!(state.ideal_bit(&params));
    }

    #[test]
    fn short_pulse_leaves_cell_programmed() {
        let params = PhysicsParams::msp430_like();
        let (statics, mut state) = programmed_cell(&params, 9, 2);
        let t_cross = t_cross_us(&params, &statics, state.wear_cycles);
        let out = apply_erase(&params, &statics, &mut state, t_cross * 0.5);
        assert!(!out.crossed);
        assert!(!state.ideal_bit(&params));
    }

    #[test]
    fn crossing_happens_at_t_cross() {
        let params = PhysicsParams::msp430_like();
        let (statics, state0) = programmed_cell(&params, 9, 3);
        let t_cross = t_cross_us(&params, &statics, state0.wear_cycles);

        let mut before = state0;
        apply_erase(&params, &statics, &mut before, t_cross * 0.98);
        // Slight slack: the programmed vth has op noise around the nominal
        // level the slope is derived from.
        let mut after = state0;
        apply_erase(&params, &statics, &mut after, t_cross * 1.05);
        assert!(after.vth < before.vth);
        assert!(
            after.ideal_bit(&params),
            "cell should read 1 just after t_cross"
        );
    }

    #[test]
    fn two_partial_pulses_equal_one_full() {
        let params = PhysicsParams::msp430_like();
        let (statics, state0) = programmed_cell(&params, 9, 4);

        let mut split = state0;
        apply_erase(&params, &statics, &mut split, 10.0);
        apply_erase(&params, &statics, &mut split, 10.0);

        let mut whole = state0;
        apply_erase(&params, &statics, &mut whole, 20.0);

        // vth path is piecewise linear in elapsed time, so splitting the pulse
        // must land within the wear-induced slope drift (tiny for 10 µs).
        assert!(
            (split.vth - whole.vth).abs() < 0.02,
            "{} vs {}",
            split.vth,
            whole.vth
        );
    }

    #[test]
    fn erase_accrues_wear() {
        let params = PhysicsParams::msp430_like();
        let (statics, mut state) = programmed_cell(&params, 9, 5);
        let w0 = state.wear_cycles;
        apply_erase(&params, &statics, &mut state, 1e4);
        assert!(state.wear_cycles > w0);
        assert!((state.wear_cycles - w0 - params.wear.erase).abs() < 1e-9);
    }

    #[test]
    fn erase_only_wear_is_small() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 9, 6);
        let mut state = CellState::fresh(&statics);
        apply_erase(&params, &statics, &mut state, 1e4);
        assert!(state.wear_cycles <= params.wear.erase_only + 1e-12);
    }

    #[test]
    fn early_trap_speeds_up_erase_after_activation() {
        let params = PhysicsParams::msp430_like();
        let mut statics = CellStatics::derive(&params, 9, 7);
        statics.straggler_extra = None;
        // Unit susceptibility so the raw-wear kcycles below straddle the
        // trap's activation threshold regardless of the derived draw.
        statics.susceptibility = 1.0;
        statics.early = Some(EarlyTrap {
            activation_kcycles: 30.0,
            factor: 0.5,
        });
        let before = t_cross_us(&params, &statics, 29_000.0);
        let after = t_cross_us(&params, &statics, 31_000.0);
        // Wear alone increases t_cross slightly; the trap halves it.
        assert!(after < before * 0.6, "before {before} after {after}");
    }

    #[test]
    fn straggler_slows_erase() {
        let params = PhysicsParams::msp430_like();
        let mut base = CellStatics::derive(&params, 9, 8);
        base.straggler_extra = None;
        base.early = None;
        let mut strag = base;
        strag.straggler_extra = Some(0.3);
        assert!(t_cross_us(&params, &strag, 0.0) > t_cross_us(&params, &base, 0.0));
    }

    #[test]
    fn temp_factor_reference_and_direction() {
        let params = PhysicsParams::msp430_like();
        assert!((erase_temp_factor(&params, params.ref_temp_c) - 1.0).abs() < 1e-12);
        assert!(
            erase_temp_factor(&params, 85.0) > 1.3,
            "hot die erases faster"
        );
        assert!(
            erase_temp_factor(&params, -20.0) < 0.8,
            "cold die erases slower"
        );
        let mut no_temp = params.clone();
        no_temp.erase_activation_energy_ev = 0.0;
        assert_eq!(erase_temp_factor(&no_temp, 125.0), 1.0);
    }

    #[test]
    fn quantization_grid_defines_the_distribution_key() {
        let params = PhysicsParams::msp430_like();
        let mut statics = CellStatics::derive(&params, 9, 10);
        statics.early = None;
        statics.susceptibility = 1.0;
        let grid_cycles = params.erase_dist_grid_kcycles * 1000.0;
        // Wears inside the same bucket share the exact crossing time; wears
        // in adjacent buckets see different calibration entries.
        for bucket in [0u32, 1, 7, 160, 400] {
            let centre = f64::from(bucket) * grid_cycles;
            let lo = (centre - 0.49 * grid_cycles).max(0.0);
            let hi = centre + 0.49 * grid_cycles;
            assert_eq!(
                t_cross_us(&params, &statics, lo).to_bits(),
                t_cross_us(&params, &statics, hi).to_bits(),
                "bucket {bucket} not flat"
            );
            let next = centre + 1.01 * grid_cycles;
            assert!(
                t_cross_us(&params, &statics, next) > t_cross_us(&params, &statics, centre),
                "bucket {bucket} boundary has no step"
            );
        }
    }

    #[test]
    fn cached_paths_are_bit_identical_to_uncached() {
        let params = PhysicsParams::msp430_like();
        let mut cache = EraseDistCache::new(params.erase_dist_grid_kcycles);
        for i in 0..512u64 {
            let (statics, state) = programmed_cell(&params, 0xCACE, i);
            // Mix of shared (0, 40k) and per-cell-unique wear keys so both
            // hit and miss paths are exercised.
            for w in [0.0, 40_000.0, 40_000.0 + i as f64] {
                assert_eq!(
                    t_cross_us(&params, &statics, w).to_bits(),
                    t_cross_us_cached(&params, &statics, w, &mut cache).to_bits()
                );
            }
            assert_eq!(
                t_full_us(&params, &statics, &state).to_bits(),
                t_full_us_cached(&params, &statics, &state, &mut cache).to_bits()
            );
            let mut plain = state;
            let mut cached = state;
            let out_plain = apply_erase(&params, &statics, &mut plain, 12.5);
            let out_cached = apply_erase_cached(&params, &statics, &mut cached, 12.5, &mut cache);
            assert_eq!(out_plain, out_cached);
            assert_eq!(plain.vth.to_bits(), cached.vth.to_bits());
            assert_eq!(plain.wear_cycles.to_bits(), cached.wear_cycles.to_bits());
        }
    }

    #[test]
    fn all_erased_estimate_matches_paper_scale() {
        let params = PhysicsParams::msp430_like();
        let fresh = all_erased_estimate_us(&params, 0.0, 4096);
        assert!((25.0..=45.0).contains(&fresh), "fresh estimate {fresh}");
        let worn = all_erased_estimate_us(&params, 100_000.0, 4096);
        assert!((600.0..=1250.0).contains(&worn), "100K estimate {worn}");
    }
}
