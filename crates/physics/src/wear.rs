//! Bulk wear accounting and endurance helpers.
//!
//! Imprinting a watermark applies tens of thousands of identical P/E cycles.
//! Because wear accumulation is linear in the cycle count, the end state of
//! `n` repeated cycles can be computed in closed form; [`bulk_pe_stress`] is
//! that fast path. The faithful cycle-by-cycle loop and the bulk path are
//! asserted equivalent in tests (and again at the `flashmark-core` level).

use crate::cell::{CellState, CellStatics};
use crate::params::PhysicsParams;

/// Applies `cycles` full erase+program cycles to a cell in closed form.
///
/// * `ends_programmed = true` leaves the cell programmed (the last operation
///   was a program of a 0-bit), as after `ImprintFlashmark`.
/// * `ends_programmed = false` leaves the cell erased.
///
/// `programmed_each_cycle` says whether the cell was programmed in every
/// cycle (a watermark "bad"/0 cell) or only erase-pulsed (a "good"/1 cell).
///
/// # Panics
///
/// Panics if `cycles` is negative.
pub fn bulk_pe_stress(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    cycles: f64,
    programmed_each_cycle: bool,
    ends_programmed: bool,
) {
    assert!(cycles >= 0.0, "cycle count must be non-negative");
    let per_cycle = if programmed_each_cycle {
        params.wear.program + params.wear.erase
    } else {
        params.wear.erase_only
    };
    state.wear_cycles += per_cycle * cycles;
    state.vth = if ends_programmed {
        state.vth_prog_now(params, statics)
    } else {
        state.vth_erased_now(params, statics)
    };
}

/// Fraction of rated endurance consumed (1.0 = at the endurance limit).
#[must_use]
pub fn endurance_fraction(params: &PhysicsParams, state: &CellState) -> f64 {
    state.wear_kcycles() / params.endurance_kcycles
}

/// Whether the cell is past its rated endurance (may still function, but no
/// longer reliably — matching the paper's description).
#[must_use]
pub fn is_beyond_endurance(params: &PhysicsParams, state: &CellState) -> bool {
    endurance_fraction(params, state) > 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erase::{apply_erase, t_full_us};
    use crate::program::apply_program;
    use crate::rng::SplitMix64;

    #[test]
    fn bulk_matches_loop_wear_for_programmed_cells() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 4, 4);

        let mut looped = CellState::fresh(&statics);
        let mut rng = SplitMix64::new(0);
        let n = 40;
        for _ in 0..n {
            // erase (from programmed, except the very first iteration)...
            let t = t_full_us(&params, &statics, &looped) * 1.2;
            apply_erase(&params, &statics, &mut looped, t);
            // ...then program.
            apply_program(&params, &statics, &mut looped, &mut rng);
        }

        let mut bulk = CellState::fresh(&statics);
        bulk_pe_stress(&params, &statics, &mut bulk, n as f64, true, true);

        // First loop iteration erases an *erased* cell (cheap), so the loop
        // undershoots the bulk value by at most one erase weight.
        let diff = (bulk.wear_cycles - looped.wear_cycles).abs();
        assert!(diff <= params.wear.erase + 0.11, "wear diff {diff}");
        assert!(!bulk.ideal_bit(&params), "must end programmed");
    }

    #[test]
    fn bulk_erase_only_wear_is_small() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 4, 5);
        let mut cell = CellState::fresh(&statics);
        bulk_pe_stress(&params, &statics, &mut cell, 10_000.0, false, false);
        assert!((cell.wear_cycles - 10_000.0 * params.wear.erase_only).abs() < 1e-6);
        assert!(cell.ideal_bit(&params), "must end erased");
    }

    #[test]
    fn endurance_fraction_scales() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 4, 6);
        let mut cell = CellState::fresh(&statics);
        assert_eq!(endurance_fraction(&params, &cell), 0.0);
        bulk_pe_stress(&params, &statics, &mut cell, 50_000.0, true, true);
        assert!((endurance_fraction(&params, &cell) - 0.5).abs() < 0.01);
        assert!(!is_beyond_endurance(&params, &cell));
        bulk_pe_stress(&params, &statics, &mut cell, 60_000.0, true, true);
        assert!(is_beyond_endurance(&params, &cell));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bulk_rejects_negative_cycles() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 4, 7);
        let mut cell = CellState::fresh(&statics);
        bulk_pe_stress(&params, &statics, &mut cell, -1.0, true, true);
    }
}
