//! Deterministic random-number generation for the simulator.
//!
//! Two kinds of randomness are needed:
//!
//! 1. **Static per-cell variation** (process variation): must be a pure
//!    function of `(chip_seed, cell_index, channel)` so that the same chip
//!    always has the same cells, regardless of the order operations touch
//!    them. See [`cell_normal`] / [`cell_uniform`], backed by
//!    [`CounterStream`].
//! 2. **Per-operation noise** (pulse jitter, read noise): counter-based
//!    [`CounterStream`]s keyed on `(op seed, entity, op counter)` for the
//!    batched kernels, and the sequential [`SplitMix64`] stream for
//!    inherently serial paths.
//!
//! Both are built on the SplitMix64 avalanche finalizer ([`mix64`]) — tiny,
//! fast, and dependency-free. The counter-based form carries no mutable
//! state, so lane kernels can evaluate draws in any order and still match a
//! scalar loop bit for bit.

/// A SplitMix64 pseudo-random generator.
///
/// Deterministic, `Copy`-cheap, and good enough statistically for Monte-Carlo
/// style simulation (it passes BigCrush as a 64-bit mixer).
///
/// # Example
///
/// ```
/// use flashmark_physics::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Returns a uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize requires n > 0");
        // Rejection-free mapping; bias is negligible for simulation sizes.
        (self.next_u64() % n as u64) as usize
    }

    /// Returns a standard-normal draw (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging the first uniform away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Derives an independent child generator; `salt` distinguishes children.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> Self {
        Self::new(mix64(self.next_u64() ^ mix64(salt)))
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(i + 1);
            items.swap(i, j);
        }
    }
}

/// A counter-based random stream: a pure function of
/// `(trial_seed, cell_index, op_counter)` with indexed draws.
///
/// Unlike [`SplitMix64`], a `CounterStream` carries **no mutable state**: the
/// constructor folds its three coordinates into one avalanche-mixed key, and
/// every draw is `mix2(key, draw_index)`. Because draw *i* never depends on
/// draw *i − 1*, a lane kernel can evaluate any subset of draws, in any
/// order, in bulk — and still produce bit-identical values to a scalar loop.
///
/// # Example
///
/// ```
/// use flashmark_physics::rng::CounterStream;
/// let a = CounterStream::new(7, 42, 3);
/// let b = CounterStream::new(7, 42, 3);
/// assert_eq!(a.draw_u64(0), b.draw_u64(0));
/// assert_ne!(a.draw_u64(0), CounterStream::new(7, 42, 4).draw_u64(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterStream {
    key: u64,
}

impl CounterStream {
    /// Derives the stream for operation `op_counter` of entity `cell_index`
    /// under `trial_seed`.
    #[must_use]
    pub const fn new(trial_seed: u64, cell_index: u64, op_counter: u64) -> Self {
        Self {
            key: mix2(mix2(trial_seed, cell_index), op_counter),
        }
    }

    /// The mixed key; sub-streams can be derived from it with [`mix2`].
    #[must_use]
    pub const fn key(&self) -> u64 {
        self.key
    }

    /// The `draw`-th 64-bit value of the stream.
    #[must_use]
    pub const fn draw_u64(&self, draw: u64) -> u64 {
        mix2(self.key, draw)
    }

    /// The `draw`-th uniform value, strictly inside `(0, 1)` (safe to feed
    /// through an inverse CDF) with 52 bits of precision.
    #[must_use]
    pub fn uniform(&self, draw: u64) -> f64 {
        uniform_from_bits(self.draw_u64(draw))
    }

    /// The `draw`-th standard-normal value, via the inverse normal CDF (one
    /// uniform per normal — no Box–Muller pairing, so lanes stay branch-free
    /// and independent).
    #[must_use]
    pub fn normal(&self, draw: u64) -> f64 {
        crate::variation::inverse_normal_cdf(self.uniform(draw))
    }
}

/// Maps 64 random bits to a uniform value strictly inside `(0, 1)`.
///
/// The top 52 bits are centred on the half-step, so the result is never 0 or
/// 1 exactly — required by [`crate::variation::inverse_normal_cdf`]. (At 53
/// bits the largest value would round-to-even up to exactly 1.0.)
#[must_use]
pub fn uniform_from_bits(bits: u64) -> f64 {
    ((bits >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
}

/// The SplitMix64 finalizer: a high-quality 64-bit avalanche mixer.
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 64-bit values into one well-mixed value.
#[must_use]
pub const fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b ^ 0x9E37_79B9_7F4A_7C15))
}

/// Independent draw channels for static per-cell variation.
///
/// Each channel yields an independent random stream for the same cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Channel {
    /// Log-normal erase-speed deviation (the dominant variation).
    EraseSpeed = 1,
    /// Straggler-tail selection (slow-to-erase outliers).
    StragglerSelect = 2,
    /// Straggler-tail magnitude.
    StragglerMagnitude = 3,
    /// Early-eraser trap selection (wear-activated fast-erase outliers).
    EarlySelect = 4,
    /// Early-eraser activation threshold.
    EarlyActivation = 5,
    /// Early-eraser magnitude.
    EarlyMagnitude = 6,
    /// Fresh erased-state threshold-voltage offset.
    VthErased = 7,
    /// Programmed-state threshold-voltage offset.
    VthProgrammed = 8,
    /// Full-program time deviation.
    ProgTime = 9,
    /// Retention (charge-loss rate) deviation.
    Retention = 10,
    /// Wear-susceptibility quantile (heterogeneous wear response).
    Susceptibility = 11,
}

fn cell_stream(chip_seed: u64, cell_index: u64, channel: Channel) -> CounterStream {
    CounterStream::new(chip_seed, cell_index, channel as u64)
}

/// Deterministic uniform draw strictly inside `(0, 1)` for a cell/channel
/// pair, drawn from the counter-based stream at `(chip_seed, cell_index,
/// channel)`.
#[must_use]
pub fn cell_uniform(chip_seed: u64, cell_index: u64, channel: Channel) -> f64 {
    cell_stream(chip_seed, cell_index, channel).uniform(0)
}

/// Deterministic standard-normal draw for a cell/channel pair, via the
/// inverse normal CDF (no Box–Muller pairing: one uniform per normal keeps
/// bulk derivation loops branch-light and transcendental-free).
#[must_use]
pub fn cell_normal(chip_seed: u64, cell_index: u64, channel: Channel) -> f64 {
    cell_stream(chip_seed, cell_index, channel).normal(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn cell_draws_are_pure_functions() {
        let a = cell_normal(0xABCD, 17, Channel::EraseSpeed);
        let b = cell_normal(0xABCD, 17, Channel::EraseSpeed);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_channels_are_independent() {
        let a = cell_normal(0xABCD, 17, Channel::EraseSpeed);
        let b = cell_normal(0xABCD, 17, Channel::VthErased);
        assert_ne!(a, b);
    }

    #[test]
    fn cells_differ() {
        let a = cell_normal(0xABCD, 17, Channel::EraseSpeed);
        let b = cell_normal(0xABCD, 18, Channel::EraseSpeed);
        assert_ne!(a, b);
    }

    #[test]
    fn chips_differ() {
        let a = cell_normal(1, 17, Channel::EraseSpeed);
        let b = cell_normal(2, 17, Channel::EraseSpeed);
        assert_ne!(a, b);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.range_usize(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "requires n > 0")]
    fn range_usize_zero_panics() {
        SplitMix64::new(0).range_usize(0);
    }

    #[test]
    fn counter_stream_is_a_pure_function_of_its_coordinates() {
        let a = CounterStream::new(0xABCD, 17, 5);
        let b = CounterStream::new(0xABCD, 17, 5);
        for draw in 0..64 {
            assert_eq!(a.draw_u64(draw), b.draw_u64(draw));
            assert_eq!(a.uniform(draw).to_bits(), b.uniform(draw).to_bits());
            assert_eq!(a.normal(draw).to_bits(), b.normal(draw).to_bits());
        }
    }

    #[test]
    fn counter_stream_coordinates_are_independent() {
        let base = CounterStream::new(1, 2, 3).draw_u64(0);
        assert_ne!(CounterStream::new(9, 2, 3).draw_u64(0), base);
        assert_ne!(CounterStream::new(1, 9, 3).draw_u64(0), base);
        assert_ne!(CounterStream::new(1, 2, 9).draw_u64(0), base);
        assert_ne!(CounterStream::new(1, 2, 3).draw_u64(1), base);
    }

    #[test]
    fn counter_stream_uniform_is_strictly_inside_unit_interval() {
        // Exercise the extreme bit patterns directly: all-zero and all-one
        // top bits must still land strictly inside (0, 1).
        assert!(uniform_from_bits(0) > 0.0);
        assert!(uniform_from_bits(u64::MAX) < 1.0);
        let s = CounterStream::new(0xFEED, 0, 0);
        for draw in 0..10_000 {
            let u = s.uniform(draw);
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn counter_stream_normal_moments() {
        let s = CounterStream::new(0x1234, 7, 0);
        let n = 100_000u64;
        let draws: Vec<f64> = (0..n).map(|d| s.normal(d)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
