//! Charge retention: slow threshold-voltage drift of programmed cells.
//!
//! Stored charge leaks off the floating gate over years (faster at higher
//! temperature and on worn oxide). Two facts matter for Flashmark:
//!
//! 1. retention loss can flip *stored data*, but
//! 2. it does **not** touch the accumulated oxide wear — the watermark lives
//!    in wear, and extraction re-programs the segment anyway, so a watermark
//!    survives arbitrarily long storage. A test asserts exactly this at the
//!    `flashmark-core` level.

use crate::cell::{CellState, CellStatics};
use crate::params::PhysicsParams;

/// Retention-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionParams {
    /// VTH loss per decade of storage time at the reference temperature, for
    /// a fresh cell (volts/decade).
    pub dv_per_decade: f64,
    /// Normalization time for the logarithmic decay (hours).
    pub t0_hours: f64,
    /// Relative retention-rate spread across cells (multiplier sigma).
    pub cell_sigma: f64,
    /// Extra fractional loss rate per kcycle of wear (worn oxide leaks more).
    pub wear_accel_per_kcycle: f64,
    /// Activation energy (eV) for the Arrhenius temperature acceleration.
    pub activation_energy_ev: f64,
    /// Reference temperature (°C) at which `dv_per_decade` applies.
    pub ref_temp_c: f64,
}

impl Default for RetentionParams {
    fn default() -> Self {
        Self {
            dv_per_decade: 0.035,
            t0_hours: 1.0,
            cell_sigma: 0.15,
            wear_accel_per_kcycle: 0.01,
            activation_energy_ev: 1.1,
            ref_temp_c: 25.0,
        }
    }
}

const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Arrhenius acceleration factor of `temp_c` relative to the reference.
#[must_use]
pub fn arrhenius_factor(params: &RetentionParams, temp_c: f64) -> f64 {
    let t = temp_c + 273.15;
    let t_ref = params.ref_temp_c + 273.15;
    (params.activation_energy_ev / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
}

/// Applies `hours` of storage at `temp_c` to the cell.
///
/// Programmed cells lose threshold voltage logarithmically in time; erased
/// cells are unaffected (no stored charge). Wear is untouched.
pub fn apply_bake(
    params: &PhysicsParams,
    statics: &CellStatics,
    state: &mut CellState,
    hours: f64,
    temp_c: f64,
) {
    debug_assert!(hours >= 0.0, "negative bake time");
    let r = &params.retention;
    let floor = state.vth_erased_now(params, statics);
    if state.vth <= floor {
        return;
    }
    let accel = arrhenius_factor(r, temp_c);
    let decades = (1.0 + hours * accel / r.t0_hours).log10();
    let cell_rate = (r.cell_sigma * statics.retention_z).exp();
    let wear_accel = 1.0 + r.wear_accel_per_kcycle * state.wear_kcycles();
    let dv = r.dv_per_decade * decades * cell_rate * wear_accel;
    state.vth = (state.vth - dv).max(floor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellStatics;
    use crate::program::apply_program;
    use crate::rng::SplitMix64;

    fn programmed(idx: u64) -> (PhysicsParams, CellStatics, CellState) {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 0xBA4E, idx);
        let mut state = CellState::fresh(&statics);
        let mut rng = SplitMix64::new(idx);
        apply_program(&params, &statics, &mut state, &mut rng);
        (params, statics, state)
    }

    #[test]
    fn bake_lowers_programmed_vth() {
        let (params, statics, mut state) = programmed(1);
        let v0 = state.vth;
        apply_bake(&params, &statics, &mut state, 24.0 * 365.0, 25.0);
        assert!(state.vth < v0);
    }

    #[test]
    fn bake_never_touches_wear() {
        let (params, statics, mut state) = programmed(2);
        let w0 = state.wear_cycles;
        apply_bake(&params, &statics, &mut state, 1e6, 125.0);
        assert_eq!(state.wear_cycles, w0);
    }

    #[test]
    fn erased_cells_unaffected() {
        let params = PhysicsParams::msp430_like();
        let statics = CellStatics::derive(&params, 0xBA4E, 3);
        let mut state = CellState::fresh(&statics);
        let v0 = state.vth;
        apply_bake(&params, &statics, &mut state, 1e5, 85.0);
        assert_eq!(state.vth, v0);
    }

    #[test]
    fn hotter_bake_loses_more() {
        let (params, statics, state0) = programmed(4);
        let mut cold = state0;
        let mut hot = state0;
        apply_bake(&params, &statics, &mut cold, 1000.0, 25.0);
        apply_bake(&params, &statics, &mut hot, 1000.0, 85.0);
        assert!(hot.vth < cold.vth);
    }

    #[test]
    fn vth_floors_at_erased_level() {
        let (params, statics, mut state) = programmed(5);
        apply_bake(&params, &statics, &mut state, 1e12, 150.0);
        assert!(state.vth >= state.vth_erased_now(&params, &statics) - 1e-12);
    }

    #[test]
    fn arrhenius_is_one_at_reference() {
        let r = RetentionParams::default();
        assert!((arrhenius_factor(&r, r.ref_temp_c) - 1.0).abs() < 1e-12);
        assert!(arrhenius_factor(&r, r.ref_temp_c + 60.0) > 10.0);
    }

    #[test]
    fn ten_year_room_bake_keeps_data_on_fresh_cell() {
        // A fresh programmed cell must still read 0 after 10 years at 25 °C
        // (the usual datasheet retention promise).
        let (params, statics, mut state) = programmed(6);
        apply_bake(&params, &statics, &mut state, 10.0 * 8760.0, 25.0);
        assert!(!state.ideal_bit(&params), "data lost after 10-year bake");
        let _ = statics;
    }
}
