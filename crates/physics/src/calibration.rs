//! Wear → erase-speed calibration, anchored to the paper's measurements.
//!
//! The Flashmark paper (Fig. 4) reports, for a 512-byte segment (4096 cells)
//! of an MSP430F5438 embedded NOR flash, the minimum partial-erase time at
//! which **all** cells read erased, as a function of prior P/E stress:
//!
//! | stress (P/E cycles) | all-cells-erased time |
//! |---|---|
//! | 0 K   | 35 µs  |
//! | 20 K  | 115 µs |
//! | 40 K  | 203 µs |
//! | 60 K  | 226 µs |
//! | 80 K  | 687 µs |
//! | 100 K | 811 µs |
//!
//! and, for the unstressed segment, an erase onset of ≈18 µs. Fig. 5 further
//! implies that at `tPE` = 23 µs about 94 % of fresh cells already read erased
//! while a 50 K segment is still almost fully programmed.
//!
//! We model the per-cell time-to-erase (threshold crossing time from the fully
//! programmed state) as log-normal: `T = median(w) · exp(sigma(w) · Z_cell)`,
//! with `median` and `sigma` interpolated from the anchor table below, plus
//! small straggler/early-eraser tails (see
//! [`TailParams`](crate::params::TailParams)). The anchor values were fitted
//! so that the extreme order statistics of 4096 cells land on the paper's
//! numbers.

use crate::variation::{expected_max_z, LogNormal};

/// One calibration anchor: erase-time distribution at a given wear level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearAnchor {
    /// Wear level in thousands of P/E cycles.
    pub kcycles: f64,
    /// Median time-to-erase from the programmed state, in microseconds.
    pub median_us: f64,
    /// Log-space sigma of the cell-to-cell erase-time distribution.
    pub sigma: f64,
}

impl WearAnchor {
    /// Creates an anchor.
    #[must_use]
    pub const fn new(kcycles: f64, median_us: f64, sigma: f64) -> Self {
        Self {
            kcycles,
            median_us,
            sigma,
        }
    }
}

/// Default anchor table fitted to the paper's Fig. 4/5 measurements.
///
/// Anchors describe the erase-time distribution of cells at a given
/// *effective* wear (raw wear × the cell's susceptibility, see
/// [`SusceptibilityTable`]); the fully-susceptible bulk of a segment
/// stressed `w` kcycles sits at effective wear ≈ `w`.
pub const MSP430_ANCHORS: &[WearAnchor] = &[
    WearAnchor::new(0.0, 20.0, 0.080),
    WearAnchor::new(5.0, 32.0, 0.120),
    WearAnchor::new(10.0, 40.0, 0.140),
    WearAnchor::new(20.0, 62.0, 0.160),
    WearAnchor::new(40.0, 116.0, 0.180),
    WearAnchor::new(60.0, 118.0, 0.180),
    WearAnchor::new(70.0, 125.0, 0.180),
    WearAnchor::new(80.0, 300.0, 0.260),
    WearAnchor::new(100.0, 345.0, 0.260),
];

/// Per-cell wear susceptibility: the heterogeneous wear response of flash
/// cells.
///
/// Oxide degradation is driven by trap generation, a strongly cell-dependent
/// percolation process: a minority of cells barely responds to stress (their
/// erase stays near-fresh-fast even after tens of kcycles) while the bulk
/// slows down in unison. A cell's *effective* wear is
/// `susceptibility × raw wear`.
///
/// This is the physical mechanism behind two of the paper's observations:
///
/// * the high single-copy extraction BER at low imprint levels (Fig. 9 —
///   weak-responder "bad" cells erase early and are misread as "good"), and
/// * the bad→good error asymmetry (Fig. 10).
///
/// The default quantile table is calibrated so that the weak-responder
/// fraction reproduces the paper's measured BER minima (19.9 % → 2.3 % for
/// 20 K → 80 K).
#[derive(Debug, Clone, PartialEq)]
pub struct SusceptibilityTable {
    /// `(cumulative probability, susceptibility)` points, both ascending.
    quantiles: Vec<(f64, f64)>,
}

impl SusceptibilityTable {
    /// Builds a table from `(cumulative probability, susceptibility)` pairs.
    ///
    /// # Errors
    ///
    /// [`CalibrationError::InvalidAnchor`] if the pairs are not ascending in
    /// both coordinates or do not span probabilities 0..=1.
    pub fn from_quantiles(quantiles: Vec<(f64, f64)>) -> Result<Self, CalibrationError> {
        if quantiles.len() < 2 {
            return Err(CalibrationError::InvalidAnchor);
        }
        let first = quantiles[0].0;
        let Some(&(last, _)) = quantiles.last() else {
            return Err(CalibrationError::InvalidAnchor);
        };
        // Anchor endpoints must sit at probabilities 0 and 1 (to float
        // tolerance — no exact f64 equality).
        if first.abs() > 1e-12 || (last - 1.0).abs() > 1e-12 {
            return Err(CalibrationError::InvalidAnchor);
        }
        for pair in quantiles.windows(2) {
            if pair[1].0 < pair[0].0 || pair[1].1 < pair[0].1 {
                return Err(CalibrationError::InvalidAnchor);
            }
        }
        if quantiles
            .iter()
            .any(|&(u, s)| !u.is_finite() || !s.is_finite() || s <= 0.0)
        {
            return Err(CalibrationError::InvalidAnchor);
        }
        Ok(Self { quantiles })
    }

    /// The default table calibrated to the paper's Fig. 9 BER minima.
    #[expect(
        clippy::missing_panics_doc,
        reason = "builtin table is statically valid"
    )]
    #[must_use]
    pub fn msp430() -> Self {
        Self::from_quantiles(vec![
            (0.000, 0.018),
            (0.010, 0.035),
            (0.040, 0.048),
            (0.110, 0.058),
            (0.300, 0.090),
            (0.390, 0.150),
            (0.450, 0.250),
            (0.490, 0.700),
            (0.530, 1.000),
            (0.900, 1.060),
            (1.000, 1.150),
        ])
        .expect("builtin table is valid")
    }

    /// A degenerate table where every cell responds identically (useful for
    /// isolating the susceptibility effect in ablations).
    #[expect(
        clippy::missing_panics_doc,
        reason = "builtin table is statically valid"
    )]
    #[must_use]
    pub fn uniform_response() -> Self {
        Self::from_quantiles(vec![(0.0, 1.0), (1.0, 1.0)]).expect("valid")
    }

    /// Susceptibility at cumulative probability `u` (piecewise-linear
    /// inverse CDF).
    #[expect(
        clippy::missing_panics_doc,
        reason = "constructor guarantees >= 2 quantiles"
    )]
    #[must_use]
    pub fn at(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        for pair in self.quantiles.windows(2) {
            let (u0, s0) = pair[0];
            let (u1, s1) = pair[1];
            if u >= u0 && u <= u1 {
                let f = if u1 > u0 { (u - u0) / (u1 - u0) } else { 0.0 };
                return s0 + f * (s1 - s0);
            }
        }
        self.quantiles.last().expect("non-empty").1
    }

    /// Fraction of cells with susceptibility below `s` (piecewise-linear
    /// CDF; the inverse of [`SusceptibilityTable::at`]).
    #[must_use]
    pub fn fraction_below(&self, s: f64) -> f64 {
        if s <= self.quantiles[0].1 {
            return 0.0;
        }
        for pair in self.quantiles.windows(2) {
            let (u0, s0) = pair[0];
            let (u1, s1) = pair[1];
            if s >= s0 && s <= s1 {
                let f = if s1 > s0 { (s - s0) / (s1 - s0) } else { 1.0 };
                return u0 + f * (u1 - u0);
            }
        }
        1.0
    }
}

impl Default for SusceptibilityTable {
    fn default() -> Self {
        Self::msp430()
    }
}

/// Piecewise-linear interpolation over a wear-anchor table.
///
/// Median and sigma are interpolated independently; beyond the last anchor the
/// median keeps growing at the final slope (wear keeps hurting past the rated
/// endurance) while sigma is held at its last value.
///
/// # Example
///
/// ```
/// use flashmark_physics::EraseCalibration;
/// let cal = EraseCalibration::msp430();
/// assert!(cal.median_us(40.0) > cal.median_us(0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EraseCalibration {
    anchors: Vec<WearAnchor>,
}

impl EraseCalibration {
    /// Builds a calibration from an anchor table.
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty, not sorted by `kcycles`, or
    /// contains non-monotone medians, non-positive medians, or negative
    /// sigmas — all of which would break the physical invariant that wear
    /// slows erase down.
    pub fn from_anchors(anchors: Vec<WearAnchor>) -> Result<Self, CalibrationError> {
        if anchors.is_empty() {
            return Err(CalibrationError::Empty);
        }
        for pair in anchors.windows(2) {
            if pair[1].kcycles <= pair[0].kcycles {
                return Err(CalibrationError::UnsortedWear);
            }
            if pair[1].median_us < pair[0].median_us {
                return Err(CalibrationError::NonMonotoneMedian);
            }
        }
        for a in &anchors {
            let median_ok = a.median_us.is_finite() && a.median_us > 0.0;
            if !median_ok || a.sigma < 0.0 || !a.kcycles.is_finite() {
                return Err(CalibrationError::InvalidAnchor);
            }
        }
        Ok(Self { anchors })
    }

    /// The default calibration fitted to the paper's MSP430 measurements.
    #[expect(
        clippy::missing_panics_doc,
        reason = "builtin table is statically valid"
    )]
    #[must_use]
    pub fn msp430() -> Self {
        Self::from_anchors(MSP430_ANCHORS.to_vec()).expect("builtin table is valid")
    }

    /// A calibration with all times scaled by `factor` (e.g. a faster
    /// stand-alone NOR part, per the paper's Section V remark).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            anchors: self
                .anchors
                .iter()
                .map(|a| WearAnchor::new(a.kcycles, a.median_us * factor, a.sigma))
                .collect(),
        }
    }

    /// The anchor table.
    #[must_use]
    pub fn anchors(&self) -> &[WearAnchor] {
        &self.anchors
    }

    /// Median time-to-erase (µs) at `kcycles` of wear.
    #[must_use]
    pub fn median_us(&self, kcycles: f64) -> f64 {
        self.interp(kcycles, |a| a.median_us, true)
    }

    /// Log-space sigma at `kcycles` of wear.
    #[must_use]
    pub fn sigma(&self, kcycles: f64) -> f64 {
        self.interp(kcycles, |a| a.sigma, false)
    }

    /// The erase-time distribution at `kcycles` of wear (tails not included).
    #[must_use]
    pub fn distribution(&self, kcycles: f64) -> LogNormal {
        LogNormal::new(self.median_us(kcycles), self.sigma(kcycles).max(0.0))
    }

    /// Estimated time (µs) at which all `n_cells` cells of a segment at
    /// `kcycles` wear read erased — the quantity Fig. 4 reports.
    ///
    /// `tail_headroom` is the multiplicative allowance for straggler cells
    /// (see [`TailParams::straggler_max_extra`](crate::params::TailParams)).
    #[must_use]
    pub fn all_erased_estimate_us(&self, kcycles: f64, n_cells: usize, tail_headroom: f64) -> f64 {
        let z = expected_max_z(n_cells);
        self.distribution(kcycles).at(z) * (1.0 + tail_headroom)
    }

    fn interp(&self, kcycles: f64, f: impl Fn(&WearAnchor) -> f64, extrapolate: bool) -> f64 {
        let k = kcycles.max(0.0);
        let a = &self.anchors;
        if k <= a[0].kcycles {
            return f(&a[0]);
        }
        if let Some(last) = a.last() {
            if k >= last.kcycles {
                if extrapolate && a.len() >= 2 {
                    let prev = &a[a.len() - 2];
                    let slope = (f(last) - f(prev)) / (last.kcycles - prev.kcycles);
                    return f(last) + slope * (k - last.kcycles);
                }
                return f(last);
            }
        }
        for pair in a.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if k >= lo.kcycles && k <= hi.kcycles {
                let t = (k - lo.kcycles) / (hi.kcycles - lo.kcycles);
                return f(lo) + t * (f(hi) - f(lo));
            }
        }
        f(a.last().expect("non-empty"))
    }
}

impl Default for EraseCalibration {
    fn default() -> Self {
        Self::msp430()
    }
}

/// Errors building an [`EraseCalibration`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// The anchor table was empty.
    Empty,
    /// Anchors were not strictly increasing in wear.
    UnsortedWear,
    /// Median erase time decreased with wear.
    NonMonotoneMedian,
    /// An anchor had a non-positive median, negative sigma, or NaN.
    InvalidAnchor,
}

impl core::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Empty => write!(f, "calibration anchor table is empty"),
            Self::UnsortedWear => write!(f, "anchors are not strictly increasing in wear"),
            Self::NonMonotoneMedian => write!(f, "median erase time decreases with wear"),
            Self::InvalidAnchor => write!(f, "anchor has invalid median, sigma, or wear"),
        }
    }
}

impl std::error::Error for CalibrationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_matches_anchors_exactly() {
        let cal = EraseCalibration::msp430();
        for a in MSP430_ANCHORS {
            assert!((cal.median_us(a.kcycles) - a.median_us).abs() < 1e-12);
            assert!((cal.sigma(a.kcycles) - a.sigma).abs() < 1e-12);
        }
    }

    #[test]
    fn median_interpolates_between_anchors() {
        let cal = EraseCalibration::msp430();
        let m = cal.median_us(30.0); // between 62 (20K) and 116 (40K)
        assert!((62.0..=116.0).contains(&m), "m = {m}");
        assert!((m - 89.0).abs() < 1e-9, "linear midpoint expected, got {m}");
    }

    #[test]
    fn median_is_monotone_in_wear() {
        let cal = EraseCalibration::msp430();
        let mut prev = 0.0;
        for i in 0..=240 {
            let k = i as f64 * 0.5;
            let m = cal.median_us(k);
            assert!(m >= prev, "median decreased at {k} kcycles");
            prev = m;
        }
    }

    #[test]
    fn extrapolates_beyond_endurance() {
        let cal = EraseCalibration::msp430();
        assert!(cal.median_us(150.0) > cal.median_us(100.0));
        // Sigma is clamped, not extrapolated.
        assert_eq!(cal.sigma(150.0), cal.sigma(100.0));
    }

    #[test]
    fn all_erased_estimates_track_paper_anchors() {
        // The model's extreme order statistic should land within ~25 % of the
        // paper's Fig. 4 numbers (we verify the tighter empirical match in
        // the experiment harness).
        let cal = EraseCalibration::msp430();
        let headroom = 0.30;
        let paper = [
            (0.0, 35.0),
            (20.0, 115.0),
            (40.0, 203.0),
            (60.0, 226.0),
            (80.0, 687.0),
            (100.0, 811.0),
        ];
        for (k, target) in paper {
            let est = cal.all_erased_estimate_us(k, 4096, headroom);
            let ratio = est / target;
            assert!(
                (0.6..=1.45).contains(&ratio),
                "at {k}K: estimate {est:.0} vs paper {target} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn scaled_calibration_scales_medians_only() {
        let cal = EraseCalibration::msp430();
        let fast = cal.scaled(0.2);
        assert!((fast.median_us(0.0) - cal.median_us(0.0) * 0.2).abs() < 1e-12);
        assert_eq!(fast.sigma(40.0), cal.sigma(40.0));
    }

    #[test]
    fn rejects_bad_tables() {
        assert_eq!(
            EraseCalibration::from_anchors(vec![]).unwrap_err(),
            CalibrationError::Empty
        );
        let unsorted = vec![
            WearAnchor::new(10.0, 20.0, 0.1),
            WearAnchor::new(5.0, 30.0, 0.1),
        ];
        assert_eq!(
            EraseCalibration::from_anchors(unsorted).unwrap_err(),
            CalibrationError::UnsortedWear
        );
        let decreasing = vec![
            WearAnchor::new(0.0, 30.0, 0.1),
            WearAnchor::new(10.0, 20.0, 0.1),
        ];
        assert_eq!(
            EraseCalibration::from_anchors(decreasing).unwrap_err(),
            CalibrationError::NonMonotoneMedian
        );
        let invalid = vec![WearAnchor::new(0.0, -1.0, 0.1)];
        assert_eq!(
            EraseCalibration::from_anchors(invalid).unwrap_err(),
            CalibrationError::InvalidAnchor
        );
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let msg = CalibrationError::Empty.to_string();
        assert!(msg.starts_with("calibration"));
        assert!(!msg.ends_with('.'));
    }
}
