//! Structure-of-arrays cell storage and chunked lane kernels.
//!
//! The per-cell scalar API ([`CellStatics`] + [`CellState`] + the functions
//! in [`crate::erase`] / [`crate::program`] / [`crate::wear`]) is the
//! *specification*: every kernel here is a data-layout transformation of a
//! scalar loop over that API and is required to produce **bit-identical**
//! results (see the `reference` module and the property tests that pin the
//! equivalence).
//!
//! A [`CellArena`] stores one `f64` lane per `CellStatics`/`CellState` field
//! in contiguous arrays, so the hot loops — erase-time sampling, threshold
//! comparison, wear accumulation — walk flat slices instead of chasing
//! per-cell structs with `Option` payloads. The `Option` fields are lane-
//! encoded with sentinels chosen so the kernels stay branch-free:
//!
//! | field | lane encoding |
//! |---|---|
//! | `straggler_extra: Option<f64>` | `ln(1 + extra)` additive term, `0.0` for `None` |
//! | `early: Option<EarlyTrap>` | activation `+∞` for `None` (never activates), `ln factor` `0.0` |
//!
//! Kernels process cells in [`LANES`]-wide chunks with a scalar tail. There
//! is no `unsafe` and no explicit SIMD: the chunk bodies are written so the
//! autovectorizer can keep each lane independent, and `f64::max` reductions
//! are exact (commutative and associative on the NaN-free domain), so the
//! chunked reduction order cannot change the result bit.
//!
//! Randomness inside kernels comes from counter-based streams
//! ([`CounterStream`]): every deviate is a pure function of
//! `(seed, cell_index, draw)`, so lanes need no serial generator state and
//! any subset of cells can be replayed in any order.

use crate::cell::{CellState, CellStatics, EarlyTrap};
use crate::erase::{ln_t_cross, wear_bucket, EraseDistCache};
use crate::noise::PulseNoise;
use crate::params::PhysicsParams;
use crate::program::PROG_OP_NOISE_SIGMA;
use crate::rng::CounterStream;

/// Lane width of the chunked kernels (8 × `f64` = one 512-bit row, two
/// AVX2 registers — wide enough to keep the autovectorizer busy, small
/// enough that the scalar tail stays cheap).
pub const LANES: usize = 8;

/// Pruning margin (in log-time units) for the frontier fast path of
/// [`CellArena::max_ln_t_cross_multi`]: a cell is discarded only when a kept
/// candidate provably exceeds it by more than this margin, which dwarfs the
/// few-ulp rounding slack of the bound arithmetic (~1e-14 at these
/// magnitudes).
const PRUNE_MARGIN: f64 = 1e-9;

/// Bits per machine word of the simulated array.
const WORD_BITS: usize = 16;

/// A structure-of-arrays arena of flash cells.
///
/// Statics lanes are immutable after [`CellArena::derive`]; `vth` and
/// `wear_cycles` are the dynamic state. The arena also carries a per-cell
/// crossing-time memo (valid because `t_cross` is a pure function of the
/// quantized wear bucket, the trap activation flag, and the cell statics).
#[derive(Debug, Clone)]
pub struct CellArena {
    // --- statics lanes (fixed at derive) ---
    erase_z: Vec<f64>,
    /// Raw `straggler_extra`, `NaN` for `None` (kept only so
    /// [`Self::statics_at`] can reconstruct the exact `Option`).
    straggler_extra: Vec<f64>,
    ln_straggler: Vec<f64>,
    early_activation: Vec<f64>,
    early_factor: Vec<f64>,
    ln_early_factor: Vec<f64>,
    vth_erased0: Vec<f64>,
    vth_prog0: Vec<f64>,
    prog_time_us: Vec<f64>,
    retention_z: Vec<f64>,
    susceptibility: Vec<f64>,
    /// Cell indices sorted by descending susceptibility (ties by index) —
    /// the scan order of the frontier-pruned max kernels.
    susc_order: Vec<u32>,
    max_susceptibility: f64,
    // --- dynamic state lanes ---
    vth: Vec<f64>,
    wear_cycles: Vec<f64>,
    // --- crossing-time memo: key = (bucket << 1) | trap_active ---
    t_cross_key: Vec<u64>,
    t_cross_val: Vec<f64>,
}

impl CellArena {
    /// Derives `n` fresh cells starting at global index `base_cell` on chip
    /// `chip_seed`. Statics come from [`CellStatics::derive`] unchanged, so
    /// the simulated chip is the same chip the scalar API sees.
    #[must_use]
    pub fn derive(params: &PhysicsParams, chip_seed: u64, base_cell: u64, n: usize) -> Self {
        let mut arena = Self {
            erase_z: Vec::with_capacity(n),
            straggler_extra: Vec::with_capacity(n),
            ln_straggler: Vec::with_capacity(n),
            early_activation: Vec::with_capacity(n),
            early_factor: Vec::with_capacity(n),
            ln_early_factor: Vec::with_capacity(n),
            vth_erased0: Vec::with_capacity(n),
            vth_prog0: Vec::with_capacity(n),
            prog_time_us: Vec::with_capacity(n),
            retention_z: Vec::with_capacity(n),
            susceptibility: Vec::with_capacity(n),
            susc_order: Vec::new(),
            max_susceptibility: 0.0,
            vth: Vec::with_capacity(n),
            wear_cycles: Vec::with_capacity(n),
            t_cross_key: vec![u64::MAX; n],
            t_cross_val: vec![0.0; n],
        };
        for i in 0..n {
            let statics = CellStatics::derive(params, chip_seed, base_cell + i as u64);
            arena.erase_z.push(statics.erase_z);
            arena
                .straggler_extra
                .push(statics.straggler_extra.unwrap_or(f64::NAN));
            arena.ln_straggler.push(statics.ln_straggler());
            arena
                .early_activation
                .push(statics.early_activation_kcycles());
            arena
                .early_factor
                .push(statics.early.map_or(1.0, |trap| trap.factor));
            arena.ln_early_factor.push(statics.ln_early_factor());
            arena.vth_erased0.push(statics.vth_erased0);
            arena.vth_prog0.push(statics.vth_prog0);
            arena.prog_time_us.push(statics.prog_time_us);
            arena.retention_z.push(statics.retention_z);
            arena.susceptibility.push(statics.susceptibility);
            arena.vth.push(statics.vth_erased0);
            arena.wear_cycles.push(0.0);
        }
        arena.max_susceptibility = arena
            .susceptibility
            .iter()
            .fold(0.0f64, |acc, &s| acc.max(s));
        arena.susc_order = (0..n as u32).collect();
        arena.susc_order.sort_unstable_by(|&a, &b| {
            arena.susceptibility[b as usize]
                .total_cmp(&arena.susceptibility[a as usize])
                .then(a.cmp(&b))
        });
        arena
    }

    /// Number of cells in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vth.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vth.is_empty()
    }

    /// Reconstructs the exact [`CellStatics`] of cell `i` from the lanes.
    #[must_use]
    pub fn statics_at(&self, i: usize) -> CellStatics {
        CellStatics {
            erase_z: self.erase_z[i],
            straggler_extra: if self.straggler_extra[i].is_nan() {
                None
            } else {
                Some(self.straggler_extra[i])
            },
            early: if self.early_activation[i].is_finite() {
                Some(EarlyTrap {
                    activation_kcycles: self.early_activation[i],
                    factor: self.early_factor[i],
                })
            } else {
                None
            },
            vth_erased0: self.vth_erased0[i],
            vth_prog0: self.vth_prog0[i],
            prog_time_us: self.prog_time_us[i],
            retention_z: self.retention_z[i],
            susceptibility: self.susceptibility[i],
        }
    }

    /// The dynamic [`CellState`] of cell `i`.
    #[must_use]
    pub fn state_at(&self, i: usize) -> CellState {
        CellState {
            vth: self.vth[i],
            wear_cycles: self.wear_cycles[i],
        }
    }

    /// Writes cell `i`'s dynamic state back into the lanes. The crossing-
    /// time memo stays valid: its key re-derives from the wear on every use.
    pub fn set_state(&mut self, i: usize, state: CellState) {
        self.vth[i] = state.vth;
        self.wear_cycles[i] = state.wear_cycles;
    }

    /// The threshold-voltage lane.
    #[must_use]
    pub fn vth(&self) -> &[f64] {
        &self.vth
    }

    /// The accumulated-wear lane.
    #[must_use]
    pub fn wear_cycles(&self) -> &[f64] {
        &self.wear_cycles
    }

    /// Pre-fills `cache` so every bucket any cell of this arena can reach at
    /// wear up to `max_wear` is resident, and the kernel loops are pure
    /// reads. Uses the arena-wide susceptibility maximum; `fl` monotonicity
    /// of `*` and `/` guarantees no per-cell bucket exceeds the bound.
    fn ensure_cache(&self, params: &PhysicsParams, cache: &mut EraseDistCache, max_wear: f64) {
        let max_k = max_wear * self.max_susceptibility / 1000.0;
        cache.ensure(&params.erase_cal, wear_bucket(max_k, cache.grid_kcycles()));
    }

    /// Chunked-lane maximum of the log-domain reference-crossing time over
    /// all cells, where stressed cells (per `stressed`) sit at
    /// `stressed_wear` and the rest at `spared_wear`.
    ///
    /// Bit-identical to folding
    /// [`ln_t_cross_us_cached`](crate::erase::ln_t_cross_us_cached) over the
    /// cells with `f64::max` (see [`reference::max_ln_t_cross`]). Returns
    /// `-∞` for an empty arena; the caller takes the final `exp`.
    ///
    /// # Panics
    ///
    /// Panics if `stressed.len() != self.len()`.
    pub fn max_ln_t_cross(
        &self,
        params: &PhysicsParams,
        cache: &mut EraseDistCache,
        stressed: &[bool],
        stressed_wear: f64,
        spared_wear: f64,
    ) -> f64 {
        let n = self.len();
        assert_eq!(stressed.len(), n, "stress mask length mismatch");
        self.ensure_cache(params, cache, stressed_wear.max(spared_wear));
        let (ln_median, sigma) = cache.tables();
        let grid = cache.grid_kcycles();
        let lane = |i: usize| -> f64 {
            let wear = if stressed[i] {
                stressed_wear
            } else {
                spared_wear
            };
            let k = wear * self.susceptibility[i] / 1000.0;
            let bucket = wear_bucket(k, grid);
            ln_t_cross(
                ln_median[bucket],
                sigma[bucket],
                self.erase_z[i],
                self.ln_straggler[i],
                self.early_activation[i],
                self.ln_early_factor[i],
                k,
            )
        };
        let chunks = n / LANES;
        let mut acc = [f64::NEG_INFINITY; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            for (j, slot) in acc.iter_mut().enumerate() {
                *slot = slot.max(lane(base + j));
            }
        }
        let mut worst = acc.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        for i in chunks * LANES..n {
            worst = worst.max(lane(i));
        }
        worst
    }

    /// [`Self::max_ln_t_cross`] for a whole schedule of
    /// `(stressed_wear, spared_wear)` pairs in one call.
    ///
    /// Bit-identical to calling [`Self::max_ln_t_cross`] once per pair, but
    /// instead of scanning all cells per pair it scans each stress class
    /// **once** in descending-susceptibility order and keeps only the
    /// Pareto frontier of cells that can attain the maximum at *some* wear:
    ///
    /// * within a class every cell sees the same wear, so the quantized
    ///   wear bucket — and with it `ln median` (non-decreasing by the
    ///   calibration's construction) — is monotone in susceptibility;
    /// * a cell whose wear-independent offset (`sigma·z + ln straggler +
    ///   trap`) is provably below that of a higher-susceptibility candidate
    ///   by more than [`PRUNE_MARGIN`] is therefore strictly below it at
    ///   every wear, and can never be the maximum.
    ///
    /// The bounds use the global sigma range of the filled table and the
    /// trap-active/-inactive extremes, so pruning is conservative; surviving
    /// candidates (typically a few dozen of 4096) are evaluated exactly per
    /// pair. If a hand-built calibration breaks `ln median` monotonicity
    /// ([`EraseDistCache::is_monotone`]), the kernel falls back to full
    /// chunked scans.
    ///
    /// # Panics
    ///
    /// Panics if `stressed.len() != self.len()`.
    pub fn max_ln_t_cross_multi(
        &self,
        params: &PhysicsParams,
        cache: &mut EraseDistCache,
        stressed: &[bool],
        wear_pairs: &[(f64, f64)],
    ) -> Vec<f64> {
        let n = self.len();
        assert_eq!(stressed.len(), n, "stress mask length mismatch");
        let max_wear = wear_pairs
            .iter()
            .fold(0.0f64, |acc, &(s, p)| acc.max(s).max(p));
        self.ensure_cache(params, cache, max_wear);
        if !cache.is_monotone() {
            return wear_pairs
                .iter()
                .map(|&(s, p)| self.max_ln_t_cross(params, cache, stressed, s, p))
                .collect();
        }
        let (ln_median, sigma) = cache.tables();
        let grid = cache.grid_kcycles();
        let (sig_lo, sig_hi) = sigma
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        let stressed_cands = self.frontier(stressed, true, sig_lo, sig_hi);
        let spared_cands = self.frontier(stressed, false, sig_lo, sig_hi);
        let eval = |cands: &[u32], wear: f64| -> f64 {
            let mut worst = f64::NEG_INFINITY;
            for &oi in cands {
                let i = oi as usize;
                let k = wear * self.susceptibility[i] / 1000.0;
                let bucket = wear_bucket(k, grid);
                worst = worst.max(ln_t_cross(
                    ln_median[bucket],
                    sigma[bucket],
                    self.erase_z[i],
                    self.ln_straggler[i],
                    self.early_activation[i],
                    self.ln_early_factor[i],
                    k,
                ));
            }
            worst
        };
        wear_pairs
            .iter()
            .map(|&(s, p)| eval(&stressed_cands, s).max(eval(&spared_cands, p)))
            .collect()
    }

    /// One descending-susceptibility sweep over the cells of one stress
    /// class, keeping every cell not strictly dominated by an
    /// earlier (≥ susceptibility) candidate. `d_hi`/`d_lo` bound the cell's
    /// wear-independent log-time offset over all sigmas in the table and
    /// both trap states; `fl` monotonicity of `*`/`+` keeps the bounds valid
    /// in floating point, and [`PRUNE_MARGIN`] absorbs the cross-expression
    /// rounding slack.
    fn frontier(&self, stressed: &[bool], want: bool, sig_lo: f64, sig_hi: f64) -> Vec<u32> {
        let mut cands = Vec::new();
        let mut best_d_lo = f64::NEG_INFINITY;
        for &oi in &self.susc_order {
            let i = oi as usize;
            if stressed[i] != want {
                continue;
            }
            let z = self.erase_z[i];
            let straggler = self.ln_straggler[i];
            let zs_a = sig_lo * z;
            let zs_b = sig_hi * z;
            let d_hi = zs_a.max(zs_b) + straggler;
            // `ln_early_factor` ≤ 0: the trap-active variant is the floor.
            let d_lo = zs_a.min(zs_b) + straggler + self.ln_early_factor[i];
            if best_d_lo >= d_hi + PRUNE_MARGIN {
                continue;
            }
            cands.push(oi);
            best_d_lo = best_d_lo.max(d_lo);
        }
        cands
    }

    /// Applies one erase pulse of nominal duration `nominal_us` (scaled by
    /// the die-temperature factor) to every cell; returns `true` once all
    /// cells have fully erased.
    ///
    /// Bit-identical to the scalar loop of
    /// [`apply_erase_cached`](crate::erase::apply_erase_cached) over
    /// [`PulseNoise::effective_us`] durations (see
    /// [`reference::erase_pulse`]). The crossing time is memoized per cell
    /// under the key `(wear bucket, trap active)` — between consecutive
    /// pulses of an erase-until-clean loop the bucket rarely moves, so the
    /// log-normal `exp` is skipped for almost every cell.
    pub fn erase_pulse(
        &mut self,
        params: &PhysicsParams,
        cache: &mut EraseDistCache,
        base_cell: u64,
        pulse: &PulseNoise,
        nominal_us: f64,
        temp_factor: f64,
    ) -> bool {
        let n = self.len();
        let max_wear = self.wear_cycles.iter().fold(0.0f64, |acc, &w| acc.max(w));
        self.ensure_cache(params, cache, max_wear);
        let (ln_median, sigma) = cache.tables();
        let grid = cache.grid_kcycles();
        let vref = params.vref.get();
        let p_shift = params.programmed_vth_shift_per_kcycle;
        let e_shift = params.erased_vth_shift_per_kcycle;
        let wear_erase = params.wear.erase;
        let wear_erase_only = params.wear.erase_only;
        let mut all_done = true;
        for i in 0..n {
            let eff = pulse.effective_us(params, base_cell + i as u64, nominal_us) * temp_factor;
            let wear = self.wear_cycles[i];
            let susceptibility = self.susceptibility[i];
            // t_cross (memoized): a pure function of the quantized bucket,
            // the trap-activation flag, and the cell statics.
            let k = wear * susceptibility / 1000.0;
            let bucket = wear_bucket(k, grid);
            let active = k >= self.early_activation[i];
            let key = ((bucket as u64) << 1) | u64::from(active);
            let t_cross = if self.t_cross_key[i] == key {
                self.t_cross_val[i]
            } else {
                let t = ln_t_cross(
                    ln_median[bucket],
                    sigma[bucket],
                    self.erase_z[i],
                    self.ln_straggler[i],
                    self.early_activation[i],
                    self.ln_early_factor[i],
                    k,
                )
                .exp();
                self.t_cross_key[i] = key;
                self.t_cross_val[i] = t;
                t
            };
            // t_full: extend the crossing time to the full erase span.
            let keff = (wear / 1000.0) * susceptibility;
            let vth_prog = self.vth_prog0[i] + p_shift * keff;
            let vth_end = self.vth_erased0[i] + e_shift * keff;
            let span_to_ref = vth_prog - vref;
            let span_total = vth_prog - vth_end;
            let t_full = if span_to_ref <= 0.0 {
                t_cross
            } else {
                t_cross * (span_total / span_to_ref)
            };
            // Linear descent toward the wear-shifted erased level.
            let vth = self.vth[i];
            let was_programmed = vth >= vref;
            let t_full = t_full.max(1e-9);
            let slope = (vth_prog - vth_end).max(0.0) / t_full;
            let new_vth = (vth - slope * eff).max(vth_end);
            let fraction = (eff / t_full).min(1.0);
            let weight = if was_programmed {
                wear_erase
            } else {
                wear_erase_only
            };
            self.wear_cycles[i] = wear + weight * fraction;
            self.vth[i] = new_vth;
            all_done &= new_vth <= vth_end + 1e-12;
        }
        all_done
    }

    /// Senses one 16-bit word starting at cell offset `offset`; bit `b`
    /// reads 1 when cell `offset + b` conducts under a fresh noise draw
    /// (`stream` draw index = bit index).
    #[must_use]
    pub fn sense_word(&self, params: &PhysicsParams, offset: usize, stream: &CounterStream) -> u16 {
        let vref = params.vref.get();
        let sigma = params.read_noise_sigma;
        let mut value = 0u16;
        for bit in 0..WORD_BITS {
            let noise = sigma * stream.normal(bit as u64);
            if self.vth[offset + bit] + noise < vref {
                value |= 1 << bit;
            }
        }
        value
    }

    /// Programs the 0 bits of `value` into the word at cell offset `offset`
    /// (flash programming only moves bits 1 → 0); `stream` draw index = bit
    /// index.
    pub fn program_word(
        &mut self,
        params: &PhysicsParams,
        offset: usize,
        value: u16,
        stream: &CounterStream,
    ) {
        let p_shift = params.programmed_vth_shift_per_kcycle;
        let e_shift = params.erased_vth_shift_per_kcycle;
        let w_prog = params.wear.program;
        for bit in 0..WORD_BITS {
            if value & (1 << bit) == 0 {
                let i = offset + bit;
                // Lane replication of `apply_program_with_z` — exact formula
                // parity, including the `(wear / 1000.0) * susceptibility`
                // grouping of the effective wear.
                let keff = (self.wear_cycles[i] / 1000.0) * self.susceptibility[i];
                let vth_prog = self.vth_prog0[i] + p_shift * keff;
                let vth_erased = self.vth_erased0[i] + e_shift * keff;
                let target = vth_prog + PROG_OP_NOISE_SIGMA * stream.normal(bit as u64);
                let span = (vth_prog - vth_erased).max(1e-9);
                let injected = ((target - self.vth[i]) / span).clamp(0.0, 1.0);
                self.wear_cycles[i] += w_prog * injected;
                self.vth[i] = self.vth[i].max(target);
            }
        }
    }

    /// Chunked-lane closed-form P/E stress: cells flagged in `stressed` take
    /// `cycles` full program+erase cycles and end programmed; the rest take
    /// erase-only wear and end erased.
    ///
    /// Bit-identical to the scalar loop of
    /// [`bulk_pe_stress`](crate::wear::bulk_pe_stress) (see
    /// [`reference::bulk_stress`]).
    ///
    /// # Panics
    ///
    /// Panics if `stressed.len() != self.len()` or `cycles` is negative.
    pub fn bulk_stress(&mut self, params: &PhysicsParams, stressed: &[bool], cycles: f64) {
        let n = self.len();
        assert_eq!(stressed.len(), n, "stress mask length mismatch");
        assert!(cycles >= 0.0, "negative cycle count");
        let per_pe = params.wear.program + params.wear.erase;
        let per_erase_only = params.wear.erase_only;
        let p_shift = params.programmed_vth_shift_per_kcycle;
        let e_shift = params.erased_vth_shift_per_kcycle;
        let mut step = |i: usize| {
            let per_cycle = if stressed[i] { per_pe } else { per_erase_only };
            let wear = self.wear_cycles[i] + per_cycle * cycles;
            self.wear_cycles[i] = wear;
            let keff = (wear / 1000.0) * self.susceptibility[i];
            self.vth[i] = if stressed[i] {
                self.vth_prog0[i] + p_shift * keff
            } else {
                self.vth_erased0[i] + e_shift * keff
            };
        };
        let chunks = n / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            for j in 0..LANES {
                step(base + j);
            }
        }
        for i in chunks * LANES..n {
            step(i);
        }
    }
}

/// Scalar reference loops over the canonical per-cell API.
///
/// Each function here is the specification its [`CellArena`] kernel must
/// match bit-for-bit; the property tests in `tests/properties.rs` pin the
/// equivalence across cell counts (chunk-tail edges) and wear levels (LUT
/// bucket boundaries). They are deliberately written with
/// [`CellArena::statics_at`] / [`CellArena::state_at`] round-trips so they
/// also exercise the lane encodings.
pub mod reference {
    use super::CellArena;
    use crate::erase::{apply_erase_cached, ln_t_cross_us_cached, EraseDistCache};
    use crate::noise::PulseNoise;
    use crate::params::PhysicsParams;
    use crate::wear::bulk_pe_stress;

    /// Scalar fold of [`ln_t_cross_us_cached`] — the reference for
    /// [`CellArena::max_ln_t_cross`].
    pub fn max_ln_t_cross(
        arena: &CellArena,
        params: &PhysicsParams,
        cache: &mut EraseDistCache,
        stressed: &[bool],
        stressed_wear: f64,
        spared_wear: f64,
    ) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for (i, &is_stressed) in stressed.iter().enumerate().take(arena.len()) {
            let statics = arena.statics_at(i);
            let wear = if is_stressed {
                stressed_wear
            } else {
                spared_wear
            };
            worst = worst.max(ln_t_cross_us_cached(params, &statics, wear, cache));
        }
        worst
    }

    /// Scalar loop of [`apply_erase_cached`] — the reference for
    /// [`CellArena::erase_pulse`].
    pub fn erase_pulse(
        arena: &mut CellArena,
        params: &PhysicsParams,
        cache: &mut EraseDistCache,
        base_cell: u64,
        pulse: &PulseNoise,
        nominal_us: f64,
        temp_factor: f64,
    ) -> bool {
        let mut all_done = true;
        for i in 0..arena.len() {
            let statics = arena.statics_at(i);
            let mut state = arena.state_at(i);
            let eff = pulse.effective_us(params, base_cell + i as u64, nominal_us) * temp_factor;
            let outcome = apply_erase_cached(params, &statics, &mut state, eff, cache);
            arena.set_state(i, state);
            all_done &= outcome.completed;
        }
        all_done
    }

    /// Scalar loop of [`bulk_pe_stress`] — the reference for
    /// [`CellArena::bulk_stress`].
    pub fn bulk_stress(
        arena: &mut CellArena,
        params: &PhysicsParams,
        stressed: &[bool],
        cycles: f64,
    ) {
        for (i, &is_stressed) in stressed.iter().enumerate().take(arena.len()) {
            let statics = arena.statics_at(i);
            let mut state = arena.state_at(i);
            bulk_pe_stress(
                params,
                &statics,
                &mut state,
                cycles,
                is_stressed,
                is_stressed,
            );
            arena.set_state(i, state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellStatics;
    use crate::rng::SplitMix64;

    const CHIP: u64 = 0xA4E7A;

    fn arena(n: usize) -> (PhysicsParams, CellArena) {
        let params = PhysicsParams::msp430_like();
        let arena = CellArena::derive(&params, CHIP, 64, n);
        (params, arena)
    }

    fn mask(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 3 != 0).collect()
    }

    #[test]
    fn statics_roundtrip_exactly() {
        let (params, arena) = arena(600);
        for i in 0..arena.len() {
            let direct = CellStatics::derive(&params, CHIP, 64 + i as u64);
            assert_eq!(arena.statics_at(i), direct, "cell {i}");
        }
    }

    #[test]
    fn max_kernel_matches_scalar_reference() {
        let (params, arena) = arena(333);
        let stressed = mask(arena.len());
        for wear in [0.0, 4_000.0, 40_000.0, 100_000.0] {
            let mut c1 = EraseDistCache::new(params.erase_dist_grid_kcycles);
            let mut c2 = EraseDistCache::new(params.erase_dist_grid_kcycles);
            let fast = arena.max_ln_t_cross(&params, &mut c1, &stressed, wear, wear * 0.04);
            let slow =
                reference::max_ln_t_cross(&arena, &params, &mut c2, &stressed, wear, wear * 0.04);
            assert_eq!(fast.to_bits(), slow.to_bits(), "wear {wear}");
        }
    }

    #[test]
    fn multi_kernel_matches_single_calls_bitwise() {
        let (params, arena) = arena(1024);
        let stressed = mask(arena.len());
        let pairs: Vec<(f64, f64)> = (0..=16)
            .map(|s| {
                let w = 40_000.0 * f64::from(s) / 16.0;
                (w, w * 0.017_241)
            })
            .collect();
        let mut cache = EraseDistCache::new(params.erase_dist_grid_kcycles);
        let multi = arena.max_ln_t_cross_multi(&params, &mut cache, &stressed, &pairs);
        for (idx, &(s, p)) in pairs.iter().enumerate() {
            let single = arena.max_ln_t_cross(&params, &mut cache, &stressed, s, p);
            assert_eq!(multi[idx].to_bits(), single.to_bits(), "pair {idx}");
        }
    }

    #[test]
    fn program_word_matches_scalar_reference() {
        use crate::program::apply_program_with_z;
        let (params, mut fast) = arena(64);
        let mut slow = fast.clone();
        fast.bulk_stress(&params, &mask(fast.len()), 12_000.0);
        slow.bulk_stress(&params, &mask(slow.len()), 12_000.0);
        for (word, value) in [(0usize, 0x0000u16), (1, 0x5A5A), (2, 0xFFFE), (3, 0x8001)] {
            let stream = CounterStream::new(CHIP, 0x9806 ^ word as u64, word as u64);
            fast.program_word(&params, word * 16, value, &stream);
            for bit in 0..16 {
                if value & (1 << bit) == 0 {
                    let i = word * 16 + bit;
                    let statics = slow.statics_at(i);
                    let mut state = slow.state_at(i);
                    apply_program_with_z(&params, &statics, &mut state, stream.normal(bit as u64));
                    slow.set_state(i, state);
                }
            }
        }
        for i in 0..fast.len() {
            assert_eq!(fast.vth()[i].to_bits(), slow.vth()[i].to_bits(), "vth {i}");
            assert_eq!(
                fast.wear_cycles()[i].to_bits(),
                slow.wear_cycles()[i].to_bits(),
                "wear {i}"
            );
        }
    }

    #[test]
    fn erase_pulse_matches_scalar_reference() {
        let (params, mut fast) = arena(200);
        let mut slow = fast.clone();
        let stressed = mask(fast.len());
        fast.bulk_stress(&params, &stressed, 30_000.0);
        slow.bulk_stress(&params, &stressed, 30_000.0);
        let mut c1 = EraseDistCache::new(params.erase_dist_grid_kcycles);
        let mut c2 = EraseDistCache::new(params.erase_dist_grid_kcycles);
        let mut rng = SplitMix64::new(0xE7A);
        for pulse_no in 0..24 {
            let pulse = PulseNoise::draw(&params, &mut rng);
            let a = fast.erase_pulse(&params, &mut c1, 64, &pulse, 25.0, 1.07);
            let b = reference::erase_pulse(&mut slow, &params, &mut c2, 64, &pulse, 25.0, 1.07);
            assert_eq!(a, b, "pulse {pulse_no} completion");
            for i in 0..fast.len() {
                assert_eq!(
                    fast.vth()[i].to_bits(),
                    slow.vth()[i].to_bits(),
                    "pulse {pulse_no} cell {i} vth"
                );
                assert_eq!(
                    fast.wear_cycles()[i].to_bits(),
                    slow.wear_cycles()[i].to_bits(),
                    "pulse {pulse_no} cell {i} wear"
                );
            }
        }
    }

    #[test]
    fn bulk_stress_matches_scalar_reference() {
        let (params, mut fast) = arena(257);
        let mut slow = fast.clone();
        let stressed = mask(fast.len());
        for cycles in [0.0, 1.0, 12_345.0, 40_000.0] {
            fast.bulk_stress(&params, &stressed, cycles);
            reference::bulk_stress(&mut slow, &params, &stressed, cycles);
            for i in 0..fast.len() {
                assert_eq!(fast.vth()[i].to_bits(), slow.vth()[i].to_bits());
                assert_eq!(
                    fast.wear_cycles()[i].to_bits(),
                    slow.wear_cycles()[i].to_bits()
                );
            }
        }
    }

    #[test]
    fn counter_streams_make_word_ops_order_independent() {
        let (params, mut a) = arena(64);
        let mut b = a.clone();
        let stream0 = CounterStream::new(1, 2, 3);
        let stream1 = CounterStream::new(1, 2, 4);
        a.program_word(&params, 0, 0x00FF, &stream0);
        a.program_word(&params, 16, 0xF00F, &stream1);
        // Reverse order on the twin arena: counter streams are stateless,
        // so the cells end bit-identical.
        b.program_word(&params, 16, 0xF00F, &stream1);
        b.program_word(&params, 0, 0x00FF, &stream0);
        for i in 0..a.len() {
            assert_eq!(a.vth()[i].to_bits(), b.vth()[i].to_bits());
        }
        assert_eq!(
            a.sense_word(&params, 0, &stream1),
            b.sense_word(&params, 0, &stream1)
        );
    }

    #[test]
    fn empty_arena_max_is_neg_infinity() {
        let (params, arena) = arena(0);
        let mut cache = EraseDistCache::new(params.erase_dist_grid_kcycles);
        let worst = arena.max_ln_t_cross(&params, &mut cache, &[], 10_000.0, 0.0);
        assert!(worst.is_infinite() && worst < 0.0);
        assert_eq!(worst.exp(), 0.0);
    }
}
