#![forbid(unsafe_code)]
//! Floating-gate NOR flash cell physics models.
//!
//! This crate is the lowest substrate of the Flashmark reproduction. It models
//! the *analog* behaviour of floating-gate flash cells that the Flashmark
//! technique (DAC 2020) exploits:
//!
//! * threshold-voltage (`VTH`) state of each cell, with process variation,
//! * program (source-side hot-carrier injection) and erase (Fowler–Nordheim
//!   tunneling) dynamics, including **partial** operations that are aborted
//!   before completion,
//! * cumulative, irreversible oxide **wear** from program/erase stress, which
//!   slows down erase — the physical channel the watermark is written into,
//! * read sensing with noise, and long-term charge retention.
//!
//! The erase-speed-vs-wear relationship is calibrated against the measured
//! anchors published in the paper (Fig. 4: the minimum partial-erase time at
//! which *all* 4096 cells of a 512-byte segment read erased, for stress levels
//! 0 K…100 K P/E cycles). See [`calibration`].
//!
//! Everything is deterministic given a chip seed: per-cell static variation is
//! derived by hashing `(chip_seed, cell_index, channel)`, so two simulations
//! of the same chip agree bit-for-bit regardless of operation order.
//!
//! # Example
//!
//! ```
//! use flashmark_physics::{CellState, CellStatics, PhysicsParams};
//! use flashmark_physics::rng::SplitMix64;
//!
//! let params = PhysicsParams::msp430_like();
//! let statics = CellStatics::derive(&params, 0xC0FFEE, 17);
//! let mut cell = CellState::fresh(&statics);
//! let mut rng = SplitMix64::new(42);
//!
//! // Fresh cell: program it, then a full erase brings it back.
//! flashmark_physics::program::apply_program(&params, &statics, &mut cell, &mut rng);
//! assert!(!flashmark_physics::cell::sense(&params, &cell, &mut rng)); // reads 0
//! let t = flashmark_physics::erase::t_cross_us(&params, &statics, cell.wear_cycles);
//! flashmark_physics::erase::apply_erase(&params, &statics, &mut cell, t * 2.0);
//! assert!(flashmark_physics::cell::sense(&params, &cell, &mut rng)); // reads 1
//! ```

pub mod arena;
pub mod calibration;
pub mod cell;
pub mod erase;
pub mod noise;
pub mod params;
pub mod program;
pub mod retention;
pub mod rng;
pub mod units;
pub mod variation;
pub mod wear;

pub use arena::CellArena;
pub use calibration::{EraseCalibration, SusceptibilityTable, WearAnchor};
pub use cell::{CellState, CellStatics, EarlyTrap};
pub use erase::{EraseDistCache, EraseOutcome};
pub use noise::PulseNoise;
pub use params::{PhysicsParams, PhysicsParamsBuilder, TailParams, WearWeights};
pub use retention::RetentionParams;
pub use rng::CounterStream;
pub use units::{Micros, Seconds, Volts};
