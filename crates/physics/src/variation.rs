//! Elementary distributions used for process variation and noise.
//!
//! These are deliberately minimal: the simulator only needs normal,
//! log-normal, and uniform draws, each usable either with a sequential
//! [`SplitMix64`] stream or with a pre-drawn
//! standard-normal deviate (for static per-cell variation).

use crate::rng::SplitMix64;

/// A normal (Gaussian) distribution `N(mean, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (must be non-negative).
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            mean.is_finite() && sigma.is_finite(),
            "non-finite parameter"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mean, sigma }
    }

    /// Value at a given standard-normal deviate `z`.
    #[must_use]
    pub fn at(&self, z: f64) -> f64 {
        self.mean + self.sigma * z
    }

    /// Draws a sample from the stream `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.at(rng.normal())
    }
}

/// A log-normal distribution parameterized by its **median** and log-space
/// sigma: `X = median · exp(sigma · Z)`.
///
/// This parameterization is the natural one for erase-time variation, where
/// the paper's anchors give typical (median) times and spreads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Median of the distribution (must be positive).
    pub median: f64,
    /// Log-space standard deviation (must be non-negative).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0`, `sigma < 0`, or either is non-finite.
    #[must_use]
    pub fn new(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && sigma.is_finite(),
            "non-finite parameter"
        );
        assert!(median > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { median, sigma }
    }

    /// Value at a given standard-normal deviate `z`.
    #[must_use]
    pub fn at(&self, z: f64) -> f64 {
        self.median * (self.sigma * z).exp()
    }

    /// Draws a sample from the stream `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.at(rng.normal())
    }
}

/// A uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite bound");
        assert!(lo <= hi, "lo must not exceed hi");
        Self { lo, hi }
    }

    /// Value at a given unit-interval position `u ∈ [0, 1)`.
    #[must_use]
    pub fn at(&self, u: f64) -> f64 {
        self.lo + (self.hi - self.lo) * u
    }

    /// Draws a sample from the stream `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.at(rng.next_f64())
    }
}

/// Approximation of the expected maximum standard-normal deviate among `n`
/// i.i.d. draws (the Blom/Elfving approximation via the inverse CDF).
///
/// Used to estimate "all `n` cells erased" times from median/sigma anchors.
#[must_use]
pub fn expected_max_z(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    // Φ⁻¹(1 - 1/(n+1)) ≈ expected max for moderate n; good to a few percent.
    inverse_normal_cdf(1.0 - 1.0 / (n as f64 + 1.0))
}

/// Inverse standard-normal CDF (Acklam's rational approximation).
///
/// Accurate to about 1.15e-9 over `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF Φ(z) via `erf` approximation (Abramowitz–Stegun 7.1.26).
///
/// Accurate to about 1.5e-7, plenty for predicted-BER estimates.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / core::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn normal_at_deviates() {
        let n = Normal::new(10.0, 2.0);
        assert_eq!(n.at(0.0), 10.0);
        assert_eq!(n.at(1.0), 12.0);
        assert_eq!(n.at(-2.0), 6.0);
    }

    #[test]
    fn lognormal_median_and_monotone() {
        let ln = LogNormal::new(20.0, 0.3);
        assert_eq!(ln.at(0.0), 20.0);
        assert!(ln.at(1.0) > ln.at(0.0));
        assert!(ln.at(-1.0) < ln.at(0.0));
        assert!(ln.at(-10.0) > 0.0, "log-normal is always positive");
    }

    #[test]
    fn uniform_at() {
        let u = Uniform::new(2.0, 4.0);
        assert_eq!(u.at(0.0), 2.0);
        assert_eq!(u.at(0.5), 3.0);
    }

    #[test]
    fn samples_respect_bounds() {
        let u = Uniform::new(-1.0, 1.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn inverse_cdf_round_trip() {
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let z = inverse_normal_cdf(p);
            let back = normal_cdf(z);
            assert!((back - p).abs() < 1e-4, "p={p} z={z} back={back}");
        }
    }

    #[test]
    fn inverse_cdf_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn expected_max_grows_with_n() {
        let z1k = expected_max_z(1_000);
        let z4k = expected_max_z(4_096);
        assert!(z4k > z1k);
        // For 4096 samples the expected max deviate is around 3.3–3.4.
        assert!((3.1..3.6).contains(&z4k), "z4k = {z4k}");
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn lognormal_rejects_nonpositive_median() {
        let _ = LogNormal::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(2.0, 1.0);
    }
}
