//! Per-pulse noise composition.
//!
//! An erase (or program) pulse of nominal duration `t` does not act on every
//! cell identically:
//!
//! * a **common-mode** factor (charge-pump voltage, temperature, timing of
//!   the abort command) scales the effective duration for *all* cells in the
//!   pulse — this is what correlates extraction errors between watermark
//!   replicas that share a pulse (visible in the paper's Fig. 11), and
//! * a **per-cell** jitter factor models local field fluctuation.
//!
//! Both are log-normal with sigmas from
//! [`PhysicsParams`].

use crate::params::PhysicsParams;
use crate::rng::{mix2, uniform_from_bits, CounterStream, SplitMix64};
use crate::variation::inverse_normal_cdf;

/// The noise context of one pulse (drawn once per pulse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseNoise {
    /// Common-mode multiplier on the pulse's effective duration.
    pub common_factor: f64,
    seed: u64,
}

impl PulseNoise {
    /// Draws the pulse-level noise for the next pulse from `rng`.
    pub fn draw(params: &PhysicsParams, rng: &mut SplitMix64) -> Self {
        let z = rng.normal();
        Self {
            common_factor: (params.common_jitter_sigma * z).exp(),
            seed: rng.next_u64(),
        }
    }

    /// Draws the pulse-level noise from a counter-based stream: draw 0 is the
    /// common-mode deviate, draw 1 seeds the per-cell jitter hash.
    #[must_use]
    pub fn from_stream(params: &PhysicsParams, stream: &CounterStream) -> Self {
        Self {
            common_factor: (params.common_jitter_sigma * stream.normal(0)).exp(),
            seed: stream.draw_u64(1),
        }
    }

    /// A noise-free pulse (useful for deterministic analysis and tests).
    #[must_use]
    pub fn none() -> Self {
        Self {
            common_factor: 1.0,
            seed: 0,
        }
    }

    /// Effective duration experienced by cell `cell_index` for a pulse of
    /// nominal duration `nominal_us`.
    ///
    /// Deterministic given the pulse and the cell, so the same pulse can be
    /// replayed cell-by-cell in any order.
    #[must_use]
    pub fn effective_us(&self, params: &PhysicsParams, cell_index: u64, nominal_us: f64) -> f64 {
        if self.seed == 0 {
            return nominal_us * self.common_factor;
        }
        // One avalanche hash and an inverse-CDF normal per cell — stateless,
        // so lane kernels can replay any subset of cells bit-identically.
        let z = inverse_normal_cdf(uniform_from_bits(mix2(self.seed, cell_index)));
        let cell_factor = (params.op_jitter_sigma * z).exp();
        nominal_us * self.common_factor * cell_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PhysicsParams;

    #[test]
    fn none_is_identity() {
        let params = PhysicsParams::msp430_like();
        let pn = PulseNoise::none();
        assert_eq!(pn.effective_us(&params, 5, 20.0), 20.0);
    }

    #[test]
    fn common_factor_applies_to_all_cells() {
        let params = PhysicsParams::msp430_like();
        let mut rng = SplitMix64::new(77);
        let pn = PulseNoise::draw(&params, &mut rng);
        let base = 100.0;
        let e0 = pn.effective_us(&params, 0, base);
        let e1 = pn.effective_us(&params, 1, base);
        // Both share the common factor; they differ only by the small
        // per-cell jitter.
        let ratio = e0 / e1;
        assert!((0.8..1.25).contains(&ratio));
        assert!((e0 / base / pn.common_factor - 1.0).abs() < 0.2);
    }

    #[test]
    fn per_cell_jitter_is_deterministic_for_a_pulse() {
        let params = PhysicsParams::msp430_like();
        let mut rng = SplitMix64::new(78);
        let pn = PulseNoise::draw(&params, &mut rng);
        assert_eq!(
            pn.effective_us(&params, 9, 50.0),
            pn.effective_us(&params, 9, 50.0)
        );
    }

    #[test]
    fn pulses_differ_between_draws() {
        let params = PhysicsParams::msp430_like();
        let mut rng = SplitMix64::new(79);
        let a = PulseNoise::draw(&params, &mut rng);
        let b = PulseNoise::draw(&params, &mut rng);
        assert_ne!(
            a.effective_us(&params, 3, 10.0),
            b.effective_us(&params, 3, 10.0)
        );
    }

    #[test]
    fn common_factor_near_one() {
        let params = PhysicsParams::msp430_like();
        let mut rng = SplitMix64::new(80);
        for _ in 0..100 {
            let pn = PulseNoise::draw(&params, &mut rng);
            assert!(
                (0.8..1.25).contains(&pn.common_factor),
                "{}",
                pn.common_factor
            );
        }
    }
}
