//! Property-based tests of the physics invariants Flashmark rests on.

use proptest::prelude::*;

use flashmark_physics::cell::{CellState, CellStatics};
use flashmark_physics::erase::{apply_erase, t_cross_us, t_full_us};
use flashmark_physics::program::apply_program;
use flashmark_physics::retention::apply_bake;
use flashmark_physics::rng::SplitMix64;
use flashmark_physics::wear::bulk_pe_stress;
use flashmark_physics::{PhysicsParams, SusceptibilityTable};

fn params() -> PhysicsParams {
    PhysicsParams::msp430_like()
}

proptest! {
    /// Erase time never decreases as wear accumulates, *except* across an
    /// early-eraser trap activation (the deliberate discontinuity behind
    /// the paper's bad→good error asymmetry). On either side of the
    /// activation — and for the ~98 % of cells without a trap — the
    /// relationship is monotone: a counterfeiter cannot speed a worn cell
    /// back up.
    #[test]
    fn t_cross_monotone_in_wear(seed in any::<u64>(), idx in 0u64..100_000, w1 in 0.0f64..120_000.0, w2 in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        if let Some(trap) = s.early {
            let activation = trap.activation_kcycles * 1000.0;
            let same_side = (lo * s.susceptibility < activation) == (hi * s.susceptibility < activation);
            prop_assume!(same_side);
        }
        prop_assert!(t_cross_us(&p, &s, lo) <= t_cross_us(&p, &s, hi) + 1e-9);
    }

    /// Even across a trap activation, the erase time never falls below the
    /// trap-scaled fresh time — a worn cell can look *fresher than it is*,
    /// but its response still carries its full wear state underneath
    /// (factor × calibrated time), so no operation resets wear.
    #[test]
    fn early_trap_bounds_the_speedup(seed in any::<u64>(), idx in 0u64..100_000, w in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let t = t_cross_us(&p, &s, w);
        let factor = s.early.map_or(1.0, |e| e.factor);
        let floor = t_cross_us(&p, &s, 0.0) * factor;
        prop_assert!(t >= floor - 1e-9, "t {t} below floor {floor}");
    }

    /// The full-erase time is never shorter than the crossing time.
    #[test]
    fn t_full_at_least_t_cross(seed in any::<u64>(), idx in 0u64..100_000, wear in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let mut cell = CellState::fresh(&s);
        cell.wear_cycles = wear;
        cell.vth = cell.vth_prog_now(&p, &s);
        prop_assert!(t_full_us(&p, &s, &cell) >= t_cross_us(&p, &s, wear) - 1e-9);
    }

    /// Erase pulses only move the threshold voltage down (never re-charge).
    #[test]
    fn erase_never_raises_vth(seed in any::<u64>(), idx in 0u64..100_000, pulse in 0.0f64..1000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed ^ 1);
        apply_program(&p, &s, &mut cell, &mut rng);
        let v0 = cell.vth;
        apply_erase(&p, &s, &mut cell, pulse);
        prop_assert!(cell.vth <= v0 + 1e-12);
    }

    /// Wear is monotone under ANY sequence of program/erase operations.
    #[test]
    fn wear_monotone_under_any_op_sequence(seed in any::<u64>(), ops in proptest::collection::vec(0u8..3, 0..40)) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 3);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed);
        let mut prev = cell.wear_cycles;
        for op in ops {
            match op {
                0 => apply_program(&p, &s, &mut cell, &mut rng),
                1 => { apply_erase(&p, &s, &mut cell, rng.range_f64(0.0, 100.0)); }
                _ => apply_bake(&p, &s, &mut cell, rng.range_f64(0.0, 1e5), 85.0),
            }
            prop_assert!(cell.wear_cycles >= prev - 1e-12, "wear decreased");
            prev = cell.wear_cycles;
        }
    }

    /// Bulk stress is linear: n+m cycles equal n cycles then m cycles.
    #[test]
    fn bulk_stress_is_additive(seed in any::<u64>(), n in 0u32..50_000, m in 0u32..50_000, programmed in any::<bool>()) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 9);
        let mut once = CellState::fresh(&s);
        bulk_pe_stress(&p, &s, &mut once, f64::from(n) + f64::from(m), programmed, false);
        let mut twice = CellState::fresh(&s);
        bulk_pe_stress(&p, &s, &mut twice, f64::from(n), programmed, false);
        bulk_pe_stress(&p, &s, &mut twice, f64::from(m), programmed, false);
        prop_assert!((once.wear_cycles - twice.wear_cycles).abs() < 1e-6);
        prop_assert!((once.vth - twice.vth).abs() < 1e-9);
    }

    /// Retention bake never changes wear and never raises vth.
    #[test]
    fn bake_is_wear_neutral(seed in any::<u64>(), hours in 0.0f64..1e6, temp in -40.0f64..150.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 11);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed);
        apply_program(&p, &s, &mut cell, &mut rng);
        let w0 = cell.wear_cycles;
        let v0 = cell.vth;
        apply_bake(&p, &s, &mut cell, hours, temp);
        prop_assert_eq!(cell.wear_cycles, w0);
        prop_assert!(cell.vth <= v0 + 1e-12);
    }

    /// The susceptibility quantile function and its CDF are mutual inverses
    /// on the strictly-increasing part of the table.
    #[test]
    fn susceptibility_quantile_cdf_consistent(u in 0.0f64..1.0) {
        let t = SusceptibilityTable::msp430();
        let s = t.at(u);
        let back = t.fraction_below(s);
        // Piecewise-linear inverse is exact except on flat table plateaus.
        prop_assert!(back <= u + 0.06, "u {u} -> s {s} -> {back}");
    }

    /// Susceptibility is monotone in the quantile.
    #[test]
    fn susceptibility_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let t = SusceptibilityTable::msp430();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(t.at(lo) <= t.at(hi) + 1e-12);
    }

    /// Statics derivation is a pure function (any cell, any chip).
    #[test]
    fn statics_are_pure(seed in any::<u64>(), idx in any::<u64>()) {
        let p = params();
        prop_assert_eq!(CellStatics::derive(&p, seed, idx), CellStatics::derive(&p, seed, idx));
    }
}
