//! Property-based tests of the physics invariants Flashmark rests on.

use proptest::prelude::*;

use flashmark_physics::arena::{reference, CellArena};
use flashmark_physics::cell::{CellState, CellStatics};
use flashmark_physics::erase::{apply_erase, t_cross_us, t_full_us, EraseDistCache};
use flashmark_physics::program::apply_program;
use flashmark_physics::retention::apply_bake;
use flashmark_physics::rng::{CounterStream, SplitMix64};
use flashmark_physics::wear::bulk_pe_stress;
use flashmark_physics::{PhysicsParams, PulseNoise, SusceptibilityTable};

fn params() -> PhysicsParams {
    PhysicsParams::msp430_like()
}

/// A stress mask with both classes populated for any `n >= 1`.
fn lane_mask(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 3 != 0).collect()
}

fn cache(p: &PhysicsParams) -> EraseDistCache {
    EraseDistCache::new(p.erase_dist_grid_kcycles)
}

proptest! {
    /// Erase time never decreases as wear accumulates, *except* across an
    /// early-eraser trap activation (the deliberate discontinuity behind
    /// the paper's bad→good error asymmetry). On either side of the
    /// activation — and for the ~98 % of cells without a trap — the
    /// relationship is monotone: a counterfeiter cannot speed a worn cell
    /// back up.
    #[test]
    fn t_cross_monotone_in_wear(seed in any::<u64>(), idx in 0u64..100_000, w1 in 0.0f64..120_000.0, w2 in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        if let Some(trap) = s.early {
            let activation = trap.activation_kcycles * 1000.0;
            let same_side = (lo * s.susceptibility < activation) == (hi * s.susceptibility < activation);
            prop_assume!(same_side);
        }
        prop_assert!(t_cross_us(&p, &s, lo) <= t_cross_us(&p, &s, hi) + 1e-9);
    }

    /// Even across a trap activation, the erase time never falls below the
    /// trap-scaled fresh time — a worn cell can look *fresher than it is*,
    /// but its response still carries its full wear state underneath
    /// (factor × calibrated time), so no operation resets wear.
    #[test]
    fn early_trap_bounds_the_speedup(seed in any::<u64>(), idx in 0u64..100_000, w in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let t = t_cross_us(&p, &s, w);
        let factor = s.early.map_or(1.0, |e| e.factor);
        let floor = t_cross_us(&p, &s, 0.0) * factor;
        prop_assert!(t >= floor - 1e-9, "t {t} below floor {floor}");
    }

    /// The full-erase time is never shorter than the crossing time.
    #[test]
    fn t_full_at_least_t_cross(seed in any::<u64>(), idx in 0u64..100_000, wear in 0.0f64..120_000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let mut cell = CellState::fresh(&s);
        cell.wear_cycles = wear;
        cell.vth = cell.vth_prog_now(&p, &s);
        prop_assert!(t_full_us(&p, &s, &cell) >= t_cross_us(&p, &s, wear) - 1e-9);
    }

    /// Erase pulses only move the threshold voltage down (never re-charge).
    #[test]
    fn erase_never_raises_vth(seed in any::<u64>(), idx in 0u64..100_000, pulse in 0.0f64..1000.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, idx);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed ^ 1);
        apply_program(&p, &s, &mut cell, &mut rng);
        let v0 = cell.vth;
        apply_erase(&p, &s, &mut cell, pulse);
        prop_assert!(cell.vth <= v0 + 1e-12);
    }

    /// Wear is monotone under ANY sequence of program/erase operations.
    #[test]
    fn wear_monotone_under_any_op_sequence(seed in any::<u64>(), ops in proptest::collection::vec(0u8..3, 0..40)) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 3);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed);
        let mut prev = cell.wear_cycles;
        for op in ops {
            match op {
                0 => apply_program(&p, &s, &mut cell, &mut rng),
                1 => { apply_erase(&p, &s, &mut cell, rng.range_f64(0.0, 100.0)); }
                _ => apply_bake(&p, &s, &mut cell, rng.range_f64(0.0, 1e5), 85.0),
            }
            prop_assert!(cell.wear_cycles >= prev - 1e-12, "wear decreased");
            prev = cell.wear_cycles;
        }
    }

    /// Bulk stress is linear: n+m cycles equal n cycles then m cycles.
    #[test]
    fn bulk_stress_is_additive(seed in any::<u64>(), n in 0u32..50_000, m in 0u32..50_000, programmed in any::<bool>()) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 9);
        let mut once = CellState::fresh(&s);
        bulk_pe_stress(&p, &s, &mut once, f64::from(n) + f64::from(m), programmed, false);
        let mut twice = CellState::fresh(&s);
        bulk_pe_stress(&p, &s, &mut twice, f64::from(n), programmed, false);
        bulk_pe_stress(&p, &s, &mut twice, f64::from(m), programmed, false);
        prop_assert!((once.wear_cycles - twice.wear_cycles).abs() < 1e-6);
        prop_assert!((once.vth - twice.vth).abs() < 1e-9);
    }

    /// Retention bake never changes wear and never raises vth.
    #[test]
    fn bake_is_wear_neutral(seed in any::<u64>(), hours in 0.0f64..1e6, temp in -40.0f64..150.0) {
        let p = params();
        let s = CellStatics::derive(&p, seed, 11);
        let mut cell = CellState::fresh(&s);
        let mut rng = SplitMix64::new(seed);
        apply_program(&p, &s, &mut cell, &mut rng);
        let w0 = cell.wear_cycles;
        let v0 = cell.vth;
        apply_bake(&p, &s, &mut cell, hours, temp);
        prop_assert_eq!(cell.wear_cycles, w0);
        prop_assert!(cell.vth <= v0 + 1e-12);
    }

    /// The susceptibility quantile function and its CDF are mutual inverses
    /// on the strictly-increasing part of the table.
    #[test]
    fn susceptibility_quantile_cdf_consistent(u in 0.0f64..1.0) {
        let t = SusceptibilityTable::msp430();
        let s = t.at(u);
        let back = t.fraction_below(s);
        // Piecewise-linear inverse is exact except on flat table plateaus.
        prop_assert!(back <= u + 0.06, "u {u} -> s {s} -> {back}");
    }

    /// Susceptibility is monotone in the quantile.
    #[test]
    fn susceptibility_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let t = SusceptibilityTable::msp430();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(t.at(lo) <= t.at(hi) + 1e-12);
    }

    /// Statics derivation is a pure function (any cell, any chip).
    #[test]
    fn statics_are_pure(seed in any::<u64>(), idx in any::<u64>()) {
        let p = params();
        prop_assert_eq!(CellStatics::derive(&p, seed, idx), CellStatics::derive(&p, seed, idx));
    }

    /// The chunked max-crossing kernel is bit-identical to the retained
    /// scalar reference for every chunk/tail split (1..=257 covers empty,
    /// sub-chunk, exact-multiple, and multi-chunk-plus-tail arenas) and
    /// arbitrary wear pairs.
    #[test]
    fn arena_max_ln_t_cross_matches_scalar(
        seed in any::<u64>(),
        n in 1u64..258,
        sw in 0.0f64..120_000.0,
        pw in 0.0f64..120_000.0,
    ) {
        let p = params();
        let n = n as usize;
        let a = CellArena::derive(&p, seed, 128, n);
        let mask = lane_mask(n);
        let lane = a.max_ln_t_cross(&p, &mut cache(&p), &mask, sw, pw);
        let scalar = reference::max_ln_t_cross(&a, &p, &mut cache(&p), &mask, sw, pw);
        prop_assert_eq!(lane.to_bits(), scalar.to_bits());
    }

    /// The chunked erase-pulse kernel leaves every lane bit-identical to
    /// the scalar per-cell loop, starting from a stressed (mixed-wear)
    /// population.
    #[test]
    fn arena_erase_pulse_matches_scalar(
        seed in any::<u64>(),
        n in 1u64..258,
        nominal_us in 1.0f64..500.0,
        stress in 0.0f64..60_000.0,
    ) {
        let p = params();
        let n = n as usize;
        let mut lane = CellArena::derive(&p, seed, 128, n);
        let mask = lane_mask(n);
        lane.bulk_stress(&p, &mask, stress);
        let mut scalar = lane.clone();
        let pulse = PulseNoise::from_stream(&p, &CounterStream::new(seed, 0xE7A5, 0));
        let done_lane = lane.erase_pulse(&p, &mut cache(&p), 128, &pulse, nominal_us, 1.0);
        let done_scalar =
            reference::erase_pulse(&mut scalar, &p, &mut cache(&p), 128, &pulse, nominal_us, 1.0);
        prop_assert_eq!(done_lane, done_scalar);
        for i in 0..n {
            prop_assert_eq!(lane.vth()[i].to_bits(), scalar.vth()[i].to_bits());
            prop_assert_eq!(lane.wear_cycles()[i].to_bits(), scalar.wear_cycles()[i].to_bits());
        }
    }

    /// The chunked bulk-stress kernel is bit-identical to the scalar loop.
    #[test]
    fn arena_bulk_stress_matches_scalar(
        seed in any::<u64>(),
        n in 1u64..258,
        cycles in 0.0f64..120_000.0,
    ) {
        let p = params();
        let n = n as usize;
        let mut lane = CellArena::derive(&p, seed, 128, n);
        let mut scalar = lane.clone();
        let mask = lane_mask(n);
        lane.bulk_stress(&p, &mask, cycles);
        reference::bulk_stress(&mut scalar, &p, &mask, cycles);
        for i in 0..n {
            prop_assert_eq!(lane.vth()[i].to_bits(), scalar.vth()[i].to_bits());
            prop_assert_eq!(lane.wear_cycles()[i].to_bits(), scalar.wear_cycles()[i].to_bits());
        }
    }
}

/// The lane kernel agrees with the scalar reference bit-for-bit at (and
/// a hair to either side of) **every** quantization bucket boundary of the
/// erase-distribution LUT up to past rated endurance — the exact wear
/// levels where a rounding disagreement between the two paths would land
/// cells in different buckets.
#[test]
fn lane_kernel_bitwise_at_every_lut_bucket_boundary() {
    let p = params();
    // 13 cells: one full 8-lane chunk plus a 5-cell tail.
    let a = CellArena::derive(&p, 0x1D5EED, 128, 13);
    let mask = lane_mask(13);
    let mut lane_cache = cache(&p);
    let mut scalar_cache = cache(&p);
    let grid = p.erase_dist_grid_kcycles;
    let buckets = (130.0 / grid).ceil() as usize;
    for b in 0..=buckets {
        // Buckets are round(k / grid): the boundary between b and b+1
        // sits at (b + 0.5) * grid kcycles of effective wear.
        let boundary_k = (b as f64 + 0.5) * grid;
        for eps in [-1e-6, 0.0, 1e-6] {
            let wear = ((boundary_k + eps) * 1000.0).max(0.0);
            let lane = a.max_ln_t_cross(&p, &mut lane_cache, &mask, wear, wear * 0.3);
            let scalar =
                reference::max_ln_t_cross(&a, &p, &mut scalar_cache, &mask, wear, wear * 0.3);
            assert_eq!(
                lane.to_bits(),
                scalar.to_bits(),
                "bucket {b} eps {eps}: lane {lane} vs scalar {scalar}"
            );
        }
    }
}

/// The batched multi-wear kernel (Pareto-frontier pruning) matches the
/// single-pair kernel bit-for-bit on a schedule that visits every LUT
/// bucket up to past rated endurance.
#[test]
fn multi_schedule_bitwise_across_every_lut_bucket() {
    let p = params();
    let a = CellArena::derive(&p, 0x0D15EA5E, 128, 13);
    let mask = lane_mask(13);
    let grid = p.erase_dist_grid_kcycles;
    let buckets = (130.0 / grid).ceil() as usize;
    let pairs: Vec<(f64, f64)> = (0..=buckets)
        .map(|b| {
            let wear = b as f64 * grid * 1000.0;
            (wear, wear * 0.3)
        })
        .collect();
    let mut multi_cache = cache(&p);
    let multi = a.max_ln_t_cross_multi(&p, &mut multi_cache, &mask, &pairs);
    let mut single_cache = cache(&p);
    for (i, &(sw, pw)) in pairs.iter().enumerate() {
        let single = a.max_ln_t_cross(&p, &mut single_cache, &mask, sw, pw);
        assert_eq!(
            multi[i].to_bits(),
            single.to_bits(),
            "pair {i} (stressed {sw}, spared {pw})"
        );
    }
}
