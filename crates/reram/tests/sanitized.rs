//! Dynamic-sanitizer check of the ReRAM adapter: the full Flashmark
//! procedure (forming imprint, extraction, resilient verification) driven
//! through `SanitizedFlash` must produce zero protocol violations —
//! the adapter honors the same interface contract the NOR controller does.

use flashmark_core::config::FlashmarkConfig;
use flashmark_core::verify::{Verdict, Verifier};
use flashmark_core::watermark::{TestStatus, WatermarkRecord};
use flashmark_core::Imprinter;
use flashmark_nor::{FlashGeometry, SegmentAddr};
use flashmark_physics::Micros;
use flashmark_reram::{ReramChip, ReramWordAdapter};
use flashmark_sanitizer::SanitizedFlash;

fn config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap()
}

#[test]
fn full_reram_flow_is_sanitizer_clean() {
    let config = config();
    let seg = SegmentAddr::new(0);
    let record = WatermarkRecord {
        manufacturer_id: 0x1001,
        die_id: 9,
        speed_grade: 1,
        status: TestStatus::Accept,
        year_week: 2033,
    };
    let adapter = ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), 0x5A11));
    let mut sanitized = SanitizedFlash::new(adapter);

    Imprinter::new(&config)
        .imprint(&mut sanitized, seg, &record.to_watermark())
        .unwrap();
    let report = Verifier::new(config, record.manufacturer_id)
        .verify_resilient(&mut sanitized, seg)
        .unwrap();

    assert_eq!(report.verdict, Verdict::Genuine);
    assert!(
        sanitized.is_clean(),
        "violations: {:?}",
        sanitized.violations()
    );
}

#[test]
fn blank_reram_inspection_is_sanitizer_clean() {
    let adapter = ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), 0x5A12));
    let mut sanitized = SanitizedFlash::new(adapter);
    let report = Verifier::new(config(), 0x1001)
        .verify_resilient(&mut sanitized, SegmentAddr::new(0))
        .unwrap();
    assert!(matches!(report.verdict, Verdict::Counterfeit(_)));
    assert!(
        sanitized.is_clean(),
        "violations: {:?}",
        sanitized.violations()
    );
}
