//! ReRAM cell-population parameter preset.
//!
//! The watermark mechanism on resistive memory ("Watermarked ReRAM",
//! arXiv 2204.02104) is the same wear asymmetry Flashmark exploits on NOR,
//! with the stress applied at **forming time**: cells formed at an elevated
//! forming voltage carry permanently degraded filaments, which switch
//! (reset toward the high-resistance state) measurably slower for the rest
//! of the device's life. The shared physics engine models this directly —
//! the cell-state vocabulary maps as
//!
//! | NOR concept                | ReRAM concept                           |
//! |----------------------------|-----------------------------------------|
//! | erased (reads 1)           | high-resistance state (HRS)             |
//! | programmed (reads 0)       | low-resistance state (LRS)              |
//! | erase pulse                | reset pulse                             |
//! | P/E-cycle oxide wear       | filament degradation (forming stress)   |
//! | partial erase at `tPEW`    | aborted reset at `tPEW`                 |
//!
//! so the calibrated wear → switching-time machinery (and the published
//! `tPEW` extraction window) carries over unchanged. What differs — and
//! what [`reram_like`] encodes — is the population statistics:
//!
//! * **much wider device-to-device and cycle-to-cycle variation** —
//!   filament geometry is stochastic, so threshold spreads and per-pulse
//!   jitter are 2–3× the NOR figures (higher raw BER, countered by the
//!   same replica voting);
//! * **set/reset endurance asymmetry** — the set transition (filament
//!   growth) degrades the cell far more than reset (filament dissolution),
//!   so the wear weights are 0.70/0.30 instead of NOR's 0.55/0.45, and a
//!   reset pulse on an already-reset cell costs twice the NOR figure;
//! * **lower rated endurance** (60 K cycles) with a steeper per-kcycle
//!   state shift — forming stress leaves a stronger per-cycle signature.

use flashmark_physics::variation::{LogNormal, Normal};
use flashmark_physics::{PhysicsParams, TailParams, Volts, WearWeights};

/// Calibrated maximum forming stress, in equivalent P/E cycles. Forming at
/// voltages beyond this range destroys filaments outright instead of
/// degrading them, so the emulation refuses it.
pub const MAX_FORMING_CYCLES: u64 = 200_000;

/// Wear contribution of ReRAM operations: set (filament growth) dominates,
/// reset is mild, and a redundant reset on an already-reset cell still
/// nudges the filament twice as hard as NOR's erase-only figure.
#[must_use]
pub fn reram_wear_weights() -> WearWeights {
    WearWeights {
        program: 0.70,
        erase: 0.30,
        erase_only: 0.04,
    }
}

/// Parameters of a HfO₂-filament ReRAM population, expressed in the shared
/// physics vocabulary (see the module docs for the state mapping).
#[must_use]
pub fn reram_like() -> PhysicsParams {
    let mut p = PhysicsParams::msp430_like();
    // Stochastic filament geometry: wide static spreads, strong
    // cycle-to-cycle jitter, noisier resistive sensing.
    p.vth_erased = Normal::new(1.8, 0.12);
    p.vth_programmed = Normal::new(5.6, 0.18);
    p.read_noise_sigma = 0.06;
    p.op_jitter_sigma = 0.05;
    p.common_jitter_sigma = 0.05;
    // Forming stress signature: lower endurance, steeper per-kcycle state
    // shift (the watermark signal per equivalent cycle is ~2x NOR's).
    p.endurance_kcycles = 60.0;
    p.erased_vth_shift_per_kcycle = 0.008;
    p.programmed_vth_shift_per_kcycle = 0.004;
    p.wear = reram_wear_weights();
    // Set/reset transitions are field-driven, not thermally activated the
    // way Fowler-Nordheim tunneling is: a weaker temperature dependence.
    p.erase_activation_energy_ev = 0.04;
    // Stressed filaments "break through" early more often than worn flash
    // oxide: a fatter early-switcher tail sharpens the forgery asymmetry.
    p.tails = TailParams {
        straggler_prob: 0.03,
        straggler_max_extra: 0.40,
        early_prob_cap: 0.04,
        early_activation_span_kcycles: 80.0,
        ..TailParams::default()
    };
    // Set pulses are ~100 ns-class; modelled at the sub-µs scale (the reset
    // calibration stays on the shared µs grid so tPEW carries over).
    p.prog_full_time_us = LogNormal::new(0.9, 0.12);
    p.prog_speedup_per_kcycle = 0.008;
    p.vref = Volts::new(3.2);
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_valid() {
        reram_like().validate().unwrap();
    }

    #[test]
    fn full_cycle_wear_is_one_but_asymmetric() {
        let w = reram_wear_weights();
        assert!((w.program + w.erase - 1.0).abs() < 1e-12);
        assert!(w.program > 2.0 * w.erase, "set must dominate reset wear");
        assert!(w.erase_only > WearWeights::default().erase_only);
    }

    #[test]
    fn variation_is_wider_than_nor() {
        let r = reram_like();
        let n = PhysicsParams::msp430_like();
        assert!(r.vth_erased.sigma > n.vth_erased.sigma);
        assert!(r.read_noise_sigma > n.read_noise_sigma);
        assert!(r.op_jitter_sigma > n.op_jitter_sigma);
    }

    #[test]
    fn forming_signature_is_steeper_at_lower_endurance() {
        let r = reram_like();
        let n = PhysicsParams::msp430_like();
        assert!(r.endurance_kcycles < n.endurance_kcycles);
        assert!(r.erased_vth_shift_per_kcycle > n.erased_vth_shift_per_kcycle);
    }
}
