//! Word-level adapter: runs the Flashmark procedures on a [`ReramChip`].
//!
//! The Flashmark imprint/extract/verify algorithms speak
//! [`FlashInterface`]; this adapter translates that NOR vocabulary onto
//! the ReRAM operation set (program → set, erase → reset, bulk imprint →
//! single forming pass), converting [`ReramError`] back into the
//! interface's [`NorError`] the same way the NAND adapter does.

use flashmark_nor::{
    BulkStress, FlashGeometry, FlashInterface, ImprintTiming, NorError, SegmentAddr, WordAddr,
};
use flashmark_physics::{Micros, Seconds};

use crate::chip::ReramChip;
use crate::error::ReramError;

/// Maps ReRAM-domain errors onto the interface vocabulary.
fn convert(e: ReramError) -> NorError {
    match e {
        ReramError::Array(inner) => inner,
        ReramError::FormingRange { cycles, .. } => NorError::WearModelRange {
            kcycles: cycles as f64 / 1000.0,
        },
        ReramError::DataLength { got, expected } => NorError::BlockLengthMismatch { got, expected },
    }
}

/// [`FlashInterface`] over a [`ReramChip`].
#[derive(Debug, Clone)]
pub struct ReramWordAdapter {
    chip: ReramChip,
}

impl ReramWordAdapter {
    /// Wraps a chip.
    #[must_use]
    pub fn new(chip: ReramChip) -> Self {
        Self { chip }
    }

    /// The wrapped chip.
    #[must_use]
    pub fn chip(&self) -> &ReramChip {
        &self.chip
    }

    /// Mutable access to the wrapped chip.
    pub fn chip_mut(&mut self) -> &mut ReramChip {
        &mut self.chip
    }

    /// Unwraps the adapter.
    #[must_use]
    pub fn into_chip(self) -> ReramChip {
        self.chip
    }
}

impl FlashInterface for ReramWordAdapter {
    fn geometry(&self) -> FlashGeometry {
        self.chip.geometry()
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.chip.read_word(word).map_err(convert)
    }

    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        self.chip.read_block(seg).map_err(convert)
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        self.chip.set_word(word, value).map_err(convert)
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        self.chip.set_block(seg, values).map_err(convert)
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.chip.reset_segment(seg).map_err(convert)
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        self.chip.partial_reset(seg, t_pe).map_err(convert)
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.chip.reset_until_clean(seg).map_err(convert)
    }

    fn elapsed(&self) -> Seconds {
        self.chip.elapsed()
    }
}

impl BulkStress for ReramWordAdapter {
    /// The ReRAM "bulk imprint" is one forming pass at a calibrated
    /// elevated voltage; the imprint-timing schedule is a flash concept
    /// (baseline vs early-exit erase loops) and does not apply.
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        _timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        self.chip.form_mark(seg, pattern, cycles).map_err(convert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::FlashInterfaceExt;

    fn adapter() -> ReramWordAdapter {
        ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), 0x0AD4))
    }

    #[test]
    fn interface_roundtrip_on_reram() {
        let mut a = adapter();
        let seg = SegmentAddr::new(1);
        a.program_all_zero(seg).unwrap();
        assert!(a.read_segment(seg).unwrap().iter().all(|&w| w == 0));
        a.erase_segment(seg).unwrap();
        assert!(a.read_segment(seg).unwrap().iter().all(|&w| w == 0xFFFF));
    }

    #[test]
    fn unwrapping_returns_the_driven_chip() {
        let mut a = adapter();
        a.program_all_zero(SegmentAddr::new(0)).unwrap();
        let chip = a.into_chip();
        assert!(chip.counters().block_sets > 0);
    }

    #[test]
    fn forming_range_maps_to_wear_model_range() {
        let mut a = adapter();
        let err = a
            .bulk_imprint(
                SegmentAddr::new(0),
                &vec![0u16; 256],
                1_000_000,
                ImprintTiming::Accelerated,
            )
            .unwrap_err();
        assert!(matches!(err, NorError::WearModelRange { .. }));
    }

    #[test]
    fn data_length_maps_to_block_length_mismatch() {
        let mut a = adapter();
        let err = a
            .program_block(SegmentAddr::new(0), &[0u16; 4])
            .unwrap_err();
        assert!(matches!(err, NorError::BlockLengthMismatch { .. }));
    }
}
