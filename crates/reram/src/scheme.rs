//! The forming-voltage watermark as a [`WatermarkScheme`].
//!
//! [`ReramScheme`] runs the *unchanged* Flashmark imprint/extract/verify
//! procedures against a [`ReramWordAdapter`]: the watermark is deposited
//! as forming-voltage stress (one pass, milliseconds) instead of an
//! erase/program wear loop (hundreds of seconds), and read back with the
//! same `tPEW`-aborted reset the paper uses on NOR. The scheme name in
//! campaign artifacts and registry records is `"reram_forming"`.

use flashmark_core::config::FlashmarkConfig;
use flashmark_core::extract::{Extraction, Extractor};
use flashmark_core::imprint::Imprinter;
use flashmark_core::scheme::{ImprintCost, SchemeError, SchemeVerification, WatermarkScheme};
use flashmark_core::verify::Verifier;
use flashmark_core::watermark::{Watermark, WatermarkRecord, RECORD_BITS};
use flashmark_nor::SegmentAddr;

use crate::adapter::ReramWordAdapter;

/// Parameters of a ReRAM forming-watermark campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ReramParams {
    /// Flashmark operating point (`NPE` here is the equivalent forming
    /// stress in P/E cycles; `tPEW` is the aborted-reset duration).
    pub config: FlashmarkConfig,
    /// The reserved watermark segment.
    pub seg: SegmentAddr,
    /// Manufacturer ID the inspector expects in the record.
    pub manufacturer_id: u16,
    /// The record the manufacturer imprints at forming.
    pub record: WatermarkRecord,
}

/// ReRAM enrollment: the signed record and its imprintable bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct ReramEnrollment {
    /// The die-sort record (identity, grade, status, CRC-16).
    pub record: WatermarkRecord,
    /// The record as the imprinted watermark pattern.
    pub watermark: Watermark,
}

/// The forming-voltage ReRAM scheme behind the [`WatermarkScheme`] facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReramScheme;

impl WatermarkScheme for ReramScheme {
    type Chip = ReramWordAdapter;
    type Params = ReramParams;
    type Enrollment = ReramEnrollment;
    type Evidence = Extraction;

    fn name(&self) -> &'static str {
        "reram_forming"
    }

    fn enroll(
        &self,
        _chip: &mut ReramWordAdapter,
        params: &ReramParams,
    ) -> Result<ReramEnrollment, SchemeError> {
        Ok(ReramEnrollment {
            record: params.record,
            watermark: params.record.to_watermark(),
        })
    }

    fn imprint(
        &self,
        chip: &mut ReramWordAdapter,
        params: &ReramParams,
        enrollment: &ReramEnrollment,
    ) -> Result<ImprintCost, SchemeError> {
        let report =
            Imprinter::new(&params.config).imprint(chip, params.seg, &enrollment.watermark)?;
        Ok(ImprintCost {
            cycles: report.cycles,
            elapsed: report.elapsed,
        })
    }

    fn extract(
        &self,
        chip: &mut ReramWordAdapter,
        params: &ReramParams,
        _enrollment: &ReramEnrollment,
    ) -> Result<Extraction, SchemeError> {
        Ok(Extractor::new(&params.config).extract(chip, params.seg, RECORD_BITS)?)
    }

    fn verify(
        &self,
        chip: &mut ReramWordAdapter,
        params: &ReramParams,
        enrollment: &ReramEnrollment,
    ) -> Result<SchemeVerification, SchemeError> {
        let report = Verifier::new(params.config.clone(), params.manufacturer_id)
            .verify_resilient(chip, params.seg)?;
        let mismatch = self.evidence_mismatch(enrollment, &report.extraction);
        Ok(SchemeVerification {
            verdict: report.verdict,
            resolution: report.resolution.strategy(),
            mismatch,
        })
    }

    fn evidence_mismatch(
        &self,
        enrollment: &ReramEnrollment,
        evidence: &Extraction,
    ) -> Option<f64> {
        (evidence.bits().len() == enrollment.watermark.len())
            .then(|| evidence.ber_against(&enrollment.watermark))
    }

    fn wear_estimate(&self, chip: &mut ReramWordAdapter, params: &ReramParams) -> f64 {
        chip.chip_mut().wear_stats(params.seg).mean_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ReramChip;
    use flashmark_core::pipeline::{inspect, provision, roundtrip};
    use flashmark_core::verify::{CounterfeitReason, Verdict};
    use flashmark_core::watermark::TestStatus;
    use flashmark_nor::FlashGeometry;
    use flashmark_physics::Micros;

    fn chip(seed: u64) -> ReramWordAdapter {
        ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), seed))
    }

    fn params(manufacturer_id: u16, status: TestStatus) -> ReramParams {
        ReramParams {
            config: FlashmarkConfig::builder()
                .n_pe(60_000)
                .replicas(7)
                .t_pew(Micros::new(28.0))
                .build()
                .unwrap(),
            seg: SegmentAddr::new(0),
            manufacturer_id,
            record: WatermarkRecord {
                manufacturer_id,
                die_id: 42,
                speed_grade: 1,
                status,
                year_week: 2033,
            },
        }
    }

    #[test]
    fn genuine_roundtrip_verifies() {
        let scheme = ReramScheme;
        let p = params(0x3003, TestStatus::Accept);
        let mut c = chip(101);
        let (_enrollment, cost, v) = roundtrip(&scheme, &mut c, &p).unwrap();
        assert_eq!(v.verdict, Verdict::Genuine, "resolution {}", v.resolution);
        assert_eq!(cost.cycles, 60_000);
        // Forming is a single millisecond-class pass, not a wear loop.
        assert!(cost.elapsed.get() < 1.0, "imprint took {}", cost.elapsed);
    }

    #[test]
    fn blank_chip_rejects() {
        let scheme = ReramScheme;
        let p = params(0x3003, TestStatus::Accept);
        let mut c = chip(102);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let v = scheme.verify(&mut c, &p, &enrollment).unwrap();
        assert_eq!(
            v.verdict,
            Verdict::Counterfeit(CounterfeitReason::NoWatermark)
        );
    }

    #[test]
    fn extraction_recovers_the_record_bits() {
        let scheme = ReramScheme;
        let p = params(0x3003, TestStatus::Accept);
        let mut c = chip(103);
        let (enrollment, _) = provision(&scheme, &mut c, &p).unwrap();
        let evidence = scheme.extract(&mut c, &p, &enrollment).unwrap();
        let ber = scheme.evidence_mismatch(&enrollment, &evidence).unwrap();
        assert!(ber < 0.10, "reram BER {ber}");
    }

    #[test]
    fn wear_is_monotone_over_the_lifecycle() {
        let scheme = ReramScheme;
        let p = params(0x3003, TestStatus::Accept);
        let mut c = chip(104);
        let blank = scheme.wear_estimate(&mut c, &p);
        let (enrollment, _) = provision(&scheme, &mut c, &p).unwrap();
        let formed = scheme.wear_estimate(&mut c, &p);
        assert!(formed > blank);
        inspect(&scheme, &mut c, &p, &enrollment).unwrap();
        assert!(scheme.wear_estimate(&mut c, &p) >= formed);
    }

    #[test]
    fn scheme_name_and_imprints() {
        assert_eq!(ReramScheme.name(), "reram_forming");
        assert!(ReramScheme.imprints());
    }
}
