//! Error type of the ReRAM emulation.

use core::fmt;

use flashmark_core::scheme::SchemeError;
use flashmark_nor::NorError;

/// Errors raised by the ReRAM cell array or its peripheral circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReramError {
    /// The underlying cell-array kernel failed (addressing, wear-model
    /// range, transient interface faults — the arena kernels speak
    /// [`NorError`], which the ReRAM array composes).
    Array(NorError),
    /// A forming stress exceeded the calibrated forming-voltage range.
    FormingRange {
        /// Requested equivalent stress cycles.
        cycles: u64,
        /// Calibrated maximum.
        max: u64,
    },
    /// A data buffer had the wrong length for the segment.
    DataLength {
        /// Words supplied.
        got: usize,
        /// Words required.
        expected: usize,
    },
}

impl ReramError {
    /// Whether the error is transient (a bounded retry of the same
    /// operation is the correct response). Delegates to the composed
    /// array error's classification; ReRAM-specific failures are all
    /// persistent.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Array(e) => e.is_transient(),
            Self::FormingRange { .. } | Self::DataLength { .. } => false,
        }
    }
}

impl fmt::Display for ReramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Array(e) => write!(f, "cell array error: {e}"),
            Self::FormingRange { cycles, max } => write!(
                f,
                "forming stress of {cycles} equivalent cycles exceeds the calibrated maximum {max}"
            ),
            Self::DataLength { got, expected } => {
                write!(f, "data buffer has {got} words, segment needs {expected}")
            }
        }
    }
}

impl std::error::Error for ReramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NorError> for ReramError {
    fn from(e: NorError) -> Self {
        Self::Array(e)
    }
}

impl From<ReramError> for SchemeError {
    fn from(e: ReramError) -> Self {
        let transient = e.is_transient();
        match e {
            // Array errors fold into the core vocabulary so retry ladders
            // see the same NorError they would on NOR.
            ReramError::Array(inner) => inner.into(),
            other => SchemeError::Backend {
                scheme: "reram_forming",
                message: other.to_string(),
                transient,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transiency_delegates_to_array() {
        assert!(ReramError::Array(NorError::TransientNak).is_transient());
        assert!(!ReramError::Array(NorError::Locked).is_transient());
        assert!(!ReramError::FormingRange { cycles: 10, max: 5 }.is_transient());
    }

    #[test]
    fn scheme_conversion_preserves_transiency() {
        let t: SchemeError = ReramError::Array(NorError::TransientNak).into();
        assert!(t.is_transient());
        let p: SchemeError = ReramError::FormingRange { cycles: 9, max: 1 }.into();
        assert!(!p.is_transient());
        assert!(p.to_string().contains("forming"));
    }

    #[test]
    fn displays_are_lowercase_prose() {
        for e in [
            ReramError::Array(NorError::Busy),
            ReramError::FormingRange { cycles: 2, max: 1 },
            ReramError::DataLength {
                got: 3,
                expected: 256,
            },
        ] {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }
}
