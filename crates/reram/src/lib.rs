//! ReRAM watermark backend: forming-voltage wear over the shared arenas.
//!
//! Reproduces the resistive-memory variant of the Flashmark idea
//! ("Watermarked ReRAM", arXiv 2204.02104): the counterfeiting watermark
//! is deposited as **forming-voltage stress** — filaments formed at an
//! elevated voltage switch measurably slower forever after — and read
//! back with the same `tPEW`-aborted reset the paper's NOR scheme uses.
//! The crate layers:
//!
//! * [`params`] — the ReRAM cell-population preset (wide filament
//!   variation, set/reset endurance asymmetry, steep forming signature)
//!   over the shared `flashmark-physics` parameterization;
//! * [`chip`] — [`ReramChip`], the emulated module (set/reset/forming
//!   vocabulary, sub-µs switching, ms-class forming pass);
//! * [`adapter`] — [`ReramWordAdapter`], the `FlashInterface` shim the
//!   Flashmark procedures drive unchanged;
//! * [`scheme`] — [`ReramScheme`], the `WatermarkScheme` implementation
//!   campaigns run (`"reram_forming"`).
//!
//! ```
//! use flashmark_core::config::FlashmarkConfig;
//! use flashmark_core::pipeline::roundtrip;
//! use flashmark_core::verify::Verdict;
//! use flashmark_core::watermark::{TestStatus, WatermarkRecord};
//! use flashmark_nor::{FlashGeometry, SegmentAddr};
//! use flashmark_reram::{ReramChip, ReramParams, ReramScheme, ReramWordAdapter};
//!
//! let mut chip = ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), 7));
//! let params = ReramParams {
//!     config: FlashmarkConfig::builder()
//!         .n_pe(60_000)
//!         .replicas(7)
//!         .t_pew(flashmark_physics::Micros::new(28.0))
//!         .build()
//!         .unwrap(),
//!     seg: SegmentAddr::new(0),
//!     manufacturer_id: 0x1001,
//!     record: WatermarkRecord {
//!         manufacturer_id: 0x1001,
//!         die_id: 1,
//!         speed_grade: 1,
//!         status: TestStatus::Accept,
//!         year_week: 2033,
//!     },
//! };
//! let (_enrollment, cost, verification) = roundtrip(&ReramScheme, &mut chip, &params).unwrap();
//! assert_eq!(verification.verdict, Verdict::Genuine);
//! assert!(cost.elapsed.get() < 1.0); // one forming pass, not a wear loop
//! ```

#![forbid(unsafe_code)]

pub mod adapter;
pub mod chip;
pub mod error;
pub mod params;
pub mod scheme;

pub use adapter::ReramWordAdapter;
pub use chip::{ReramChip, ReramOpCounters, ReramTimings};
pub use error::ReramError;
pub use params::{reram_like, reram_wear_weights, MAX_FORMING_CYCLES};
pub use scheme::{ReramEnrollment, ReramParams, ReramScheme};
