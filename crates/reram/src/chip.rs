//! The emulated ReRAM module: cell array, peripheral timings, sim clock.
//!
//! Structurally a sibling of the NOR `FlashController`, but speaking the
//! resistive-memory operation vocabulary: **set** (program to the
//! low-resistance state, reads 0), **reset** (return to the
//! high-resistance state, reads 1), and **forming** (the one-time
//! filament-creation stress that carries the watermark). The cell
//! population itself is the shared SoA arena from `flashmark-physics`,
//! instantiated with the [`reram_like`](crate::params::reram_like)
//! parameter preset.

use flashmark_nor::timing::SimClock;
use flashmark_nor::{FlashArray, FlashGeometry, SegmentAddr, WearStats, WordAddr};
use flashmark_obs as obs;
use flashmark_obs::{FlashOpKind, ObsEvent};
use flashmark_physics::{Micros, PhysicsParams, Seconds};

use crate::error::ReramError;
use crate::params::{reram_like, MAX_FORMING_CYCLES};

/// Operation durations of a ReRAM module. ReRAM switches in the
/// sub-microsecond range — orders of magnitude faster than flash erase —
/// which is what makes the forming-time watermark physically cheap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramTimings {
    /// Nominal full reset sweep of a segment (must exceed the slowest
    /// cell's switching time at any calibrated wear).
    pub reset_segment: Micros,
    /// Single-word set.
    pub set_word: Micros,
    /// Per-word time in block-set mode.
    pub set_block_word: Micros,
    /// Block-set setup/teardown per segment.
    pub set_block_overhead: Micros,
    /// Single-word read.
    pub read_word: Micros,
    /// Latency of aborting an in-flight reset pulse.
    pub abort_latency: Micros,
    /// Driver bring-up before a set/reset burst.
    pub setup_overhead: Micros,
    /// One forming pass over a segment (applied once per device, whatever
    /// the programmed forming-stress level — the stress is encoded in the
    /// forming *voltage*, not in repetition).
    pub forming_pass: Micros,
}

impl ReramTimings {
    /// Timings of a HfO₂ filamentary part (100 ns-class set/reset, µs-class
    /// driver overheads, ms-class forming pass).
    #[must_use]
    pub fn hfo2() -> Self {
        Self {
            reset_segment: Micros::from_millis(2.0),
            set_word: Micros::new(1.2),
            set_block_word: Micros::new(0.4),
            set_block_overhead: Micros::new(20.0),
            read_word: Micros::new(0.05),
            abort_latency: Micros::new(1.0),
            setup_overhead: Micros::new(5.0),
            forming_pass: Micros::from_millis(4.0),
        }
    }

    /// Duration of a block set of `words` words.
    #[must_use]
    pub fn block_set(&self, words: usize) -> Micros {
        self.set_block_overhead + self.set_block_word * words as f64
    }
}

impl Default for ReramTimings {
    fn default() -> Self {
        Self::hfo2()
    }
}

/// Cumulative ReRAM operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReramOpCounters {
    /// Word reads.
    pub word_reads: u64,
    /// Single-word sets.
    pub word_sets: u64,
    /// Block sets (segments).
    pub block_sets: u64,
    /// Full segment resets.
    pub segment_resets: u64,
    /// Partial (aborted) resets.
    pub partial_resets: u64,
    /// Early-exited (reset-until-clean) resets.
    pub early_exit_resets: u64,
    /// Forming passes.
    pub forming_passes: u64,
}

/// An emulated ReRAM module (array + timings + clock + counters).
#[derive(Debug, Clone)]
pub struct ReramChip {
    array: FlashArray,
    timings: ReramTimings,
    clock: SimClock,
    poll_step: Micros,
    poll_words: usize,
    counters: ReramOpCounters,
}

impl ReramChip {
    /// Creates a chip with the [`reram_like`] cell population.
    #[must_use]
    pub fn new(geometry: FlashGeometry, chip_seed: u64) -> Self {
        Self::with_params(reram_like(), geometry, chip_seed)
    }

    /// Creates a chip with explicit physics parameters (sweeps).
    #[must_use]
    pub fn with_params(params: PhysicsParams, geometry: FlashGeometry, chip_seed: u64) -> Self {
        Self {
            array: FlashArray::new(params, geometry, chip_seed),
            timings: ReramTimings::default(),
            clock: SimClock::new(),
            poll_step: Micros::new(25.0),
            poll_words: 16,
            counters: ReramOpCounters::default(),
        }
    }

    /// The operation timings in force.
    #[must_use]
    pub fn timings(&self) -> &ReramTimings {
        &self.timings
    }

    /// The array geometry.
    #[must_use]
    pub fn geometry(&self) -> FlashGeometry {
        self.array.geometry()
    }

    /// Ground-truth access to the cell array (simulator-only).
    #[must_use]
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// Mutable ground-truth access to the cell array.
    pub fn array_mut(&mut self) -> &mut FlashArray {
        &mut self.array
    }

    /// Operation counters so far.
    #[must_use]
    pub fn counters(&self) -> ReramOpCounters {
        self.counters
    }

    /// Sets the die temperature (°C) for subsequent operations.
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.array.set_temperature_c(temp_c);
    }

    /// Simulated time elapsed since power-on.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.clock.now()
    }

    /// Wear statistics of a segment (ground truth).
    pub fn wear_stats(&mut self, seg: SegmentAddr) -> WearStats {
        self.array.wear_stats(seg)
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn read_word(&mut self, word: WordAddr) -> Result<u16, ReramError> {
        let v = self.array.read_word(word)?;
        self.clock.advance(self.timings.read_word);
        self.counters.word_reads += 1;
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ReadWord,
            seg: self.geometry().segment_of(word).index(),
        });
        Ok(v)
    }

    /// Reads every word of a segment.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, ReramError> {
        let values = self.array.read_segment_words(seg)?;
        self.counters.word_reads += values.len() as u64;
        self.clock
            .advance(self.timings.read_word * values.len() as f64);
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ReadBlock,
            seg: seg.index(),
        });
        obs::emit(ObsEvent::CellsTouched {
            kind: "read_block",
            cells: self.geometry().cells_per_segment() as u64,
        });
        Ok(values)
    }

    /// Sets one word (drives 0 bits of `value` to the low-resistance
    /// state; like flash programming, sets only move bits toward 0).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn set_word(&mut self, word: WordAddr, value: u16) -> Result<(), ReramError> {
        self.array.program_word(word, value, false)?;
        self.clock.advance(self.timings.set_word);
        self.counters.word_sets += 1;
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ProgramWord,
            seg: self.geometry().segment_of(word).index(),
        });
        Ok(())
    }

    /// Sets every word of a segment in one burst.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::DataLength`] for a wrong-sized buffer or
    /// [`ReramError::Array`] for a bad address.
    pub fn set_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), ReramError> {
        let n = self.geometry().words_per_segment();
        if values.len() != n {
            return Err(ReramError::DataLength {
                got: values.len(),
                expected: n,
            });
        }
        self.array.program_segment_words(seg, values, false)?;
        self.clock.advance(self.timings.block_set(n));
        self.counters.block_sets += 1;
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ProgramBlock,
            seg: seg.index(),
        });
        obs::emit(ObsEvent::CellsTouched {
            kind: "program_block",
            cells: self.geometry().cells_per_segment() as u64,
        });
        Ok(())
    }

    /// Fully resets a segment to the high-resistance state.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn reset_segment(&mut self, seg: SegmentAddr) -> Result<(), ReramError> {
        self.array.erase_complete(seg, self.timings.reset_segment)?;
        self.clock
            .advance(self.timings.setup_overhead + self.timings.reset_segment);
        self.counters.segment_resets += 1;
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::EraseSegment,
            seg: seg.index(),
        });
        Ok(())
    }

    /// Applies a reset pulse of duration `t_pe` and aborts — the partial
    /// reset behind watermark extraction (`tPEW`-aborted reset: cells with
    /// forming-stressed filaments switch slower, so they are still read as
    /// 0 when fresh cells have already reached the high-resistance state).
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn partial_reset(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), ReramError> {
        self.array.erase_pulse(seg, t_pe)?;
        self.clock
            .advance(self.timings.setup_overhead + t_pe + self.timings.abort_latency);
        self.counters.partial_resets += 1;
        obs::emit(ObsEvent::PartialErase {
            seg: seg.index(),
            t_pe_us: t_pe.get(),
        });
        obs::emit(ObsEvent::CellsTouched {
            kind: "partial_erase",
            cells: self.geometry().cells_per_segment() as u64,
        });
        Ok(())
    }

    /// Resets a segment with verify-after-pulse polling, returning the
    /// reset time spent (excluding polling overhead) — the recharacterized
    /// `tPEW` source, exactly like the NOR early-exit erase.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::Array`] for a bad address.
    pub fn reset_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, ReramError> {
        self.clock.advance(self.timings.setup_overhead);
        let poll_overhead =
            self.timings.abort_latency + self.timings.read_word * self.poll_words as f64;
        let mut spent = Micros::new(0.0);
        let mut pulses = 0u64;
        let max_pulses = 4096;
        for _ in 0..max_pulses {
            let done = self.array.erase_pulse(seg, self.poll_step)?;
            pulses += 1;
            spent += self.poll_step;
            self.clock.advance(self.poll_step + poll_overhead);
            if done {
                break;
            }
        }
        self.counters.early_exit_resets += 1;
        obs::emit(ObsEvent::EraseUntilClean {
            seg: seg.index(),
            took_us: spent.get(),
        });
        obs::emit(ObsEvent::CellsTouched {
            kind: "erase_until_clean",
            cells: pulses * self.geometry().cells_per_segment() as u64,
        });
        Ok(spent)
    }

    /// Forms the segment with `cycles` equivalent P/E cycles of stress on
    /// the 0 bits of `pattern`, then leaves the pattern set. This is the
    /// ReRAM imprint: a **single** elevated-voltage forming pass whose
    /// voltage level is calibrated to deposit the requested stress, so the
    /// wall-clock cost is one pass regardless of the stress level — the
    /// decisive cost advantage over the NOR erase/program wear loop.
    ///
    /// Returns the elapsed chip time.
    ///
    /// # Errors
    ///
    /// Returns [`ReramError::FormingRange`] if `cycles` exceeds
    /// [`MAX_FORMING_CYCLES`], [`ReramError::DataLength`] for a wrong-sized
    /// pattern, or [`ReramError::Array`] for a bad address.
    pub fn form_mark(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
    ) -> Result<Seconds, ReramError> {
        if cycles > MAX_FORMING_CYCLES {
            return Err(ReramError::FormingRange {
                cycles,
                max: MAX_FORMING_CYCLES,
            });
        }
        let n = self.geometry().words_per_segment();
        if pattern.len() != n {
            return Err(ReramError::DataLength {
                got: pattern.len(),
                expected: n,
            });
        }
        let start = self.clock.now();
        self.array.bulk_stress(seg, pattern, cycles)?;
        self.clock
            .advance(self.timings.setup_overhead + self.timings.forming_pass);
        self.counters.forming_passes += 1;
        obs::emit(ObsEvent::BulkImprint {
            seg: seg.index(),
            cycles,
        });
        obs::emit(ObsEvent::CellsTouched {
            kind: "bulk_imprint",
            cells: self.geometry().cells_per_segment() as u64,
        });
        Ok(self.clock.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ReramChip {
        ReramChip::new(FlashGeometry::single_bank(8), 0x2E2A)
    }

    #[test]
    fn set_and_read_roundtrip() {
        let mut c = chip();
        c.set_word(WordAddr::new(3), 0x5AA5).unwrap();
        assert_eq!(c.read_word(WordAddr::new(3)).unwrap(), 0x5AA5);
        assert_eq!(c.counters().word_sets, 1);
        assert!(c.elapsed().get() > 0.0);
    }

    #[test]
    fn reset_returns_segment_to_ones() {
        let mut c = chip();
        let seg = SegmentAddr::new(1);
        c.set_block(seg, &vec![0u16; 256]).unwrap();
        c.reset_segment(seg).unwrap();
        assert!(c.read_block(seg).unwrap().iter().all(|&w| w == 0xFFFF));
    }

    #[test]
    fn forming_is_a_single_cheap_pass() {
        let mut c = chip();
        let dt = c
            .form_mark(SegmentAddr::new(2), &vec![0u16; 256], 60_000)
            .unwrap();
        // One pass: milliseconds, not the NOR loop's hundreds of seconds.
        assert!(dt.get() < 0.05, "forming took {dt}");
        assert_eq!(c.counters().forming_passes, 1);
        let wear = c.wear_stats(SegmentAddr::new(2));
        assert!(wear.max_cycles > 50_000.0, "wear {wear:?}");
    }

    #[test]
    fn forming_beyond_calibration_refused() {
        let mut c = chip();
        let err = c
            .form_mark(
                SegmentAddr::new(0),
                &vec![0u16; 256],
                MAX_FORMING_CYCLES + 1,
            )
            .unwrap_err();
        assert!(matches!(err, ReramError::FormingRange { .. }));
    }

    #[test]
    fn stressed_cells_switch_slower_under_partial_reset() {
        let mut c = chip();
        let seg = SegmentAddr::new(3);
        // Stress the low half of the segment, spare the high half.
        let mut pattern = vec![0xFFFFu16; 256];
        for w in pattern.iter_mut().take(128) {
            *w = 0x0000;
        }
        c.form_mark(seg, &pattern, 60_000).unwrap();
        c.set_block(seg, &vec![0u16; 256]).unwrap();
        c.partial_reset(seg, Micros::new(28.0)).unwrap();
        let words = c.read_block(seg).unwrap();
        let zeros = |ws: &[u16]| ws.iter().map(|w| w.count_zeros() as usize).sum::<usize>();
        let stressed_zeros = zeros(&words[..128]);
        let spared_zeros = zeros(&words[128..]);
        assert!(
            stressed_zeros > spared_zeros + 500,
            "stressed {stressed_zeros} vs spared {spared_zeros}"
        );
    }

    #[test]
    fn reset_until_clean_tracks_forming_stress() {
        let mut fresh = chip();
        let mut formed = chip();
        let seg = SegmentAddr::new(4);
        formed.form_mark(seg, &vec![0u16; 256], 60_000).unwrap();
        for c in [&mut fresh, &mut formed] {
            c.set_block(seg, &vec![0u16; 256]).unwrap();
        }
        let t_fresh = fresh.reset_until_clean(seg).unwrap();
        let t_formed = formed.reset_until_clean(seg).unwrap();
        assert!(
            t_formed.get() > t_fresh.get(),
            "formed {t_formed} <= fresh {t_fresh}"
        );
    }
}
