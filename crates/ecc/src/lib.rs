#![forbid(unsafe_code)]
//! Error-correction and integrity codes for flash watermarks.
//!
//! The paper hardens watermark extraction with **data replication plus
//! majority voting** (3/5/7 replicas, Fig. 10–11) and suggests error
//! correction codes as the alternative at equal overhead. This crate
//! provides both families behind one [`Code`] trait, plus the CRC signatures
//! used for tamper detection and a bit interleaver that decorrelates
//! common-mode extraction noise between replicas:
//!
//! * [`Repetition`] — k-way block replication with bitwise majority voting,
//! * [`Hamming`] — Hamming(15,11), optionally extended with an overall
//!   parity bit for double-error detection,
//! * [`crc`] — CRC-8/16/32 signatures,
//! * [`Interleaver`] — invertible block interleaving.
//!
//! # Example
//!
//! ```
//! use flashmark_ecc::{Code, Repetition};
//!
//! let code = Repetition::new(5).unwrap();
//! let data = vec![true, false, true, true];
//! let mut tx = code.encode(&data);
//! tx[1] = !tx[1]; // corrupt one replica bit
//! tx[6] = !tx[6]; // and another, in a different replica
//! let rx = code.decode(&tx).unwrap();
//! assert_eq!(rx.data, data);
//! assert_eq!(rx.corrected, 2);
//! ```

pub mod bits;
pub mod crc;
pub mod hamming;
pub mod interleave;
pub mod majority;
pub mod repetition;

pub use bits::{bits_from_bytes, bytes_from_bits, hamming_distance};
pub use hamming::Hamming;
pub use interleave::Interleaver;
pub use majority::{majority, MajorityVote};
pub use repetition::Repetition;

/// Outcome of a decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Recovered data bits.
    pub data: Vec<bool>,
    /// Number of channel bits the decoder corrected (for repetition codes,
    /// the number of replica bits outvoted).
    pub corrected: usize,
    /// The decoder saw errors it could detect but not correct.
    pub detected_uncorrectable: bool,
}

/// Errors from encode/decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// The input length does not match what the code expects.
    LengthMismatch {
        /// Length supplied.
        got: usize,
        /// Length required (or the required multiple).
        expected: usize,
    },
    /// A code parameter was invalid (e.g. an even replication factor).
    InvalidParameter(&'static str),
}

impl core::fmt::Display for CodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::LengthMismatch { got, expected } => {
                write!(f, "input length {got} does not match expected {expected}")
            }
            Self::InvalidParameter(why) => write!(f, "invalid code parameter: {why}"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A binary block code over bit slices.
pub trait Code {
    /// Channel bits produced for `data_len` data bits.
    fn encoded_len(&self, data_len: usize) -> usize;

    /// Data bits recovered from `encoded_len` channel bits.
    fn data_len(&self, encoded_len: usize) -> usize;

    /// Encodes data bits into channel bits.
    fn encode(&self, data: &[bool]) -> Vec<bool>;

    /// Decodes channel bits back into data bits.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `received` is not a whole number of
    /// code blocks.
    fn decode(&self, received: &[bool]) -> Result<Decoded, CodeError>;

    /// Code rate (data bits per channel bit).
    fn rate(&self) -> f64 {
        let n = self.encoded_len(1024);
        1024.0 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_error_display() {
        let e = CodeError::LengthMismatch {
            got: 3,
            expected: 15,
        };
        assert_eq!(e.to_string(), "input length 3 does not match expected 15");
        assert!(CodeError::InvalidParameter("even k")
            .to_string()
            .contains("even k"));
    }

    #[test]
    fn rate_of_repetition() {
        let r = Repetition::new(3).unwrap();
        assert!((r.rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
