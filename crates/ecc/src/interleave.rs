//! Invertible block interleaving.
//!
//! Replicas laid out back to back share partial-erase pulses, so a
//! common-mode timing excursion hurts the *same* logical bits in several
//! replicas at once. Interleaving spreads each replica across the segment,
//! converting correlated burst errors into independent ones that majority
//! voting handles well. This is one of the ablations DESIGN.md calls out.

use crate::CodeError;

/// A rectangular (row/column) block interleaver of a fixed depth.
///
/// Writing fills a `depth × width` matrix row by row and reads it column by
/// column. `interleave` followed by `deinterleave` is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interleaver {
    depth: usize,
}

impl Interleaver {
    /// Creates an interleaver of the given depth (number of rows).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameter`] if `depth` is zero.
    pub fn new(depth: usize) -> Result<Self, CodeError> {
        if depth == 0 {
            return Err(CodeError::InvalidParameter(
                "interleave depth must be non-zero",
            ));
        }
        Ok(Self { depth })
    }

    /// The interleaver depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Interleaves `bits`.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] unless the length is a multiple of the
    /// depth (pad first if needed).
    pub fn interleave(&self, bits: &[bool]) -> Result<Vec<bool>, CodeError> {
        self.permute(bits, false)
    }

    /// Inverts [`Interleaver::interleave`].
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] unless the length is a multiple of the
    /// depth.
    pub fn deinterleave(&self, bits: &[bool]) -> Result<Vec<bool>, CodeError> {
        self.permute(bits, true)
    }

    fn permute(self, bits: &[bool], invert: bool) -> Result<Vec<bool>, CodeError> {
        if !bits.len().is_multiple_of(self.depth) {
            return Err(CodeError::LengthMismatch {
                got: bits.len(),
                expected: self.depth,
            });
        }
        let width = bits.len() / self.depth;
        let mut out = vec![false; bits.len()];
        for r in 0..self.depth {
            for c in 0..width {
                let row_major = r * width + c;
                let col_major = c * self.depth + r;
                if invert {
                    out[row_major] = bits[col_major];
                } else {
                    out[col_major] = bits[row_major];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_depth() {
        assert!(Interleaver::new(0).is_err());
    }

    #[test]
    fn roundtrip_identity() {
        let il = Interleaver::new(3).unwrap();
        let bits: Vec<bool> = (0..12).map(|i| i % 5 == 0).collect();
        let inter = il.interleave(&bits).unwrap();
        assert_ne!(inter, bits, "depth-3 interleave must move bits");
        assert_eq!(il.deinterleave(&inter).unwrap(), bits);
    }

    #[test]
    fn depth_one_is_identity() {
        let il = Interleaver::new(1).unwrap();
        let bits = vec![true, false, true];
        assert_eq!(il.interleave(&bits).unwrap(), bits);
    }

    #[test]
    fn spreads_bursts() {
        // A burst of 3 consecutive channel errors lands in 3 different rows.
        let il = Interleaver::new(3).unwrap();
        let bits = vec![false; 12];
        let mut channel = il.interleave(&bits).unwrap();
        channel[0] = true;
        channel[1] = true;
        channel[2] = true;
        let back = il.deinterleave(&channel).unwrap();
        let width = 4;
        let rows_hit: std::collections::HashSet<usize> = back
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i / width)
            .collect();
        assert_eq!(rows_hit.len(), 3, "burst must spread across all rows");
    }

    #[test]
    fn length_must_be_multiple_of_depth() {
        let il = Interleaver::new(3).unwrap();
        assert!(il.interleave(&[true; 4]).is_err());
    }
}
