//! Hamming(15,11) block code, optionally extended to (16,11).
//!
//! The paper suggests error-correction codes as the alternative to replica
//! voting at lower overhead; Hamming(15,11) is the classic single-error
//! corrector at rate 0.73 (vs 0.33 for 3-way replication). The extended
//! variant adds an overall parity bit for double-error *detection*.

use crate::{Code, CodeError, Decoded};

const DATA_BITS: usize = 11;
const CODE_BITS: usize = 15;

/// Hamming(15,11) (or extended (16,11)) over 11-bit blocks.
///
/// Data shorter than a whole number of blocks is zero-padded; the decoder
/// returns the padded length (callers truncate to their known data length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Hamming {
    extended: bool,
}

impl Hamming {
    /// Plain Hamming(15,11): corrects 1 error per block.
    #[must_use]
    pub fn new() -> Self {
        Self { extended: false }
    }

    /// Extended Hamming(16,11): corrects 1, detects 2 errors per block.
    #[must_use]
    pub fn extended() -> Self {
        Self { extended: true }
    }

    /// Whether this is the extended variant.
    #[must_use]
    pub fn is_extended(&self) -> bool {
        self.extended
    }

    fn block_len(self) -> usize {
        CODE_BITS + usize::from(self.extended)
    }

    /// Encodes one 11-bit block into 15 (or 16) channel bits.
    /// Channel bit positions are 1-based Hamming positions 1..=15; powers of
    /// two are parity bits.
    #[allow(clippy::needless_range_loop)] // 1-based Hamming positions read clearest as indices
    fn encode_block(self, data: &[bool]) -> Vec<bool> {
        debug_assert_eq!(data.len(), DATA_BITS);
        let mut code = [false; CODE_BITS + 1]; // 1-based
        let mut d = data.iter();
        for pos in 1..=CODE_BITS {
            if !pos.is_power_of_two() {
                code[pos] = *d.next().expect("11 data bits fill 11 non-parity slots");
            }
        }
        for p in [1usize, 2, 4, 8] {
            let parity = (1..=CODE_BITS)
                .filter(|&pos| pos & p != 0 && !pos.is_power_of_two())
                .fold(false, |acc, pos| acc ^ code[pos]);
            code[p] = parity;
        }
        let mut out: Vec<bool> = code[1..].to_vec();
        if self.extended {
            let overall = out.iter().fold(false, |acc, &b| acc ^ b);
            out.push(overall);
        }
        out
    }

    /// Decodes one block; returns (data, corrected, uncorrectable).
    fn decode_block(self, block: &[bool]) -> (Vec<bool>, usize, bool) {
        debug_assert_eq!(block.len(), self.block_len());
        let mut code = [false; CODE_BITS + 1];
        code[1..].copy_from_slice(&block[..CODE_BITS]);
        let mut syndrome = 0usize;
        for p in [1usize, 2, 4, 8] {
            let parity = (1..=CODE_BITS)
                .filter(|&pos| pos & p != 0)
                .fold(false, |acc, pos| acc ^ code[pos]);
            if parity {
                syndrome |= p;
            }
        }
        let mut corrected = 0;
        let mut uncorrectable = false;
        if self.extended {
            let overall = block.iter().fold(false, |acc, &b| acc ^ b);
            match (syndrome, overall) {
                (0, false) => {}            // clean
                (0, true) => corrected = 1, // error in the extra parity bit itself
                (_, true) => {
                    // Single error at `syndrome`: flip it.
                    code[syndrome] = !code[syndrome];
                    corrected = 1;
                }
                (_, false) => uncorrectable = true, // double error detected
            }
        } else if syndrome != 0 {
            code[syndrome] = !code[syndrome];
            corrected = 1;
        }
        let data: Vec<bool> = (1..=CODE_BITS)
            .filter(|pos| !pos.is_power_of_two())
            .map(|pos| code[pos])
            .collect();
        (data, corrected, uncorrectable)
    }
}

impl Code for Hamming {
    fn encoded_len(&self, data_len: usize) -> usize {
        data_len.div_ceil(DATA_BITS) * self.block_len()
    }

    fn data_len(&self, encoded_len: usize) -> usize {
        encoded_len / self.block_len() * DATA_BITS
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.encoded_len(data.len()));
        for chunk in data.chunks(DATA_BITS) {
            let mut block = [false; DATA_BITS];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend(self.encode_block(&block));
        }
        out
    }

    fn decode(&self, received: &[bool]) -> Result<Decoded, CodeError> {
        if received.is_empty() || !received.len().is_multiple_of(self.block_len()) {
            return Err(CodeError::LengthMismatch {
                got: received.len(),
                expected: self.block_len(),
            });
        }
        let mut data = Vec::with_capacity(self.data_len(received.len()));
        let mut corrected = 0;
        let mut uncorrectable = false;
        for block in received.chunks(self.block_len()) {
            let (d, c, u) = self.decode_block(block);
            data.extend(d);
            corrected += c;
            uncorrectable |= u;
        }
        Ok(Decoded {
            data,
            corrected,
            detected_uncorrectable: uncorrectable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<bool> {
        (0..DATA_BITS).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn clean_roundtrip() {
        for code in [Hamming::new(), Hamming::extended()] {
            let data = sample_data();
            let rx = code.decode(&code.encode(&data)).unwrap();
            assert_eq!(rx.data, data);
            assert_eq!(rx.corrected, 0);
            assert!(!rx.detected_uncorrectable);
        }
    }

    #[test]
    fn corrects_any_single_error() {
        for code in [Hamming::new(), Hamming::extended()] {
            let data = sample_data();
            let tx = code.encode(&data);
            for i in 0..tx.len() {
                let mut corrupted = tx.clone();
                corrupted[i] = !corrupted[i];
                let rx = code.decode(&corrupted).unwrap();
                assert_eq!(rx.data, data, "error at position {i} not corrected");
                assert_eq!(rx.corrected, 1);
                assert!(!rx.detected_uncorrectable);
            }
        }
    }

    #[test]
    fn extended_detects_double_errors() {
        let code = Hamming::extended();
        let data = sample_data();
        let tx = code.encode(&data);
        let mut corrupted = tx.clone();
        corrupted[0] = !corrupted[0];
        corrupted[5] = !corrupted[5];
        let rx = code.decode(&corrupted).unwrap();
        assert!(rx.detected_uncorrectable, "double error must be detected");
    }

    #[test]
    fn plain_hamming_miscorrects_double_errors_silently() {
        // Documents the known limitation that motivates the extended form.
        let code = Hamming::new();
        let data = sample_data();
        let tx = code.encode(&data);
        let mut corrupted = tx.clone();
        corrupted[0] = !corrupted[0];
        corrupted[5] = !corrupted[5];
        let rx = code.decode(&corrupted).unwrap();
        assert!(!rx.detected_uncorrectable);
        assert_ne!(
            rx.data, data,
            "double error slips through as a miscorrection"
        );
    }

    #[test]
    fn multi_block_with_padding() {
        let code = Hamming::new();
        let data: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect(); // 30 -> 3 blocks
        let tx = code.encode(&data);
        assert_eq!(tx.len(), 45);
        let rx = code.decode(&tx).unwrap();
        assert_eq!(&rx.data[..30], &data[..]);
        assert!(
            rx.data[30..].iter().all(|&b| !b),
            "padding decodes as zeros"
        );
    }

    #[test]
    fn lengths_and_rate() {
        let code = Hamming::new();
        assert_eq!(code.encoded_len(11), 15);
        assert_eq!(code.encoded_len(12), 30);
        assert_eq!(code.data_len(30), 22);
        assert!(code.rate() > Hamming::extended().rate());
    }

    #[test]
    fn length_mismatch_detected() {
        assert!(Hamming::new().decode(&[true; 14]).is_err());
        assert!(Hamming::extended().decode(&[true; 15]).is_err());
    }
}
