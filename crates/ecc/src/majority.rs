//! Majority voting primitives.
//!
//! Used in two places by the Flashmark procedures: across the N repeated
//! reads of `AnalyzeSegment` (Fig. 3) and across watermark replicas
//! (Fig. 10).

/// Majority vote over boolean votes: `true` wins on a strict majority of
/// `true` votes. With an even count, ties go to `false` (the paper always
/// uses odd counts, where no tie is possible).
#[must_use]
pub fn majority(votes: &[bool]) -> bool {
    let ones = votes.iter().filter(|&&v| v).count();
    2 * ones > votes.len()
}

/// An incremental majority-vote accumulator with soft information.
///
/// # Example
///
/// ```
/// use flashmark_ecc::MajorityVote;
/// let mut v = MajorityVote::new();
/// v.push(true);
/// v.push(true);
/// v.push(false);
/// assert!(v.winner());
/// assert_eq!(v.margin(), 1);
/// assert!(!v.is_unanimous());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MajorityVote {
    ones: usize,
    total: usize,
}

impl MajorityVote {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vote.
    pub fn push(&mut self, vote: bool) {
        self.ones += usize::from(vote);
        self.total += 1;
    }

    /// Current winner (`false` on an exact tie or an empty tally).
    #[must_use]
    pub fn winner(&self) -> bool {
        2 * self.ones > self.total
    }

    /// Votes for `true`.
    #[must_use]
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Total votes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Absolute margin between winner and loser counts.
    #[must_use]
    pub fn margin(&self) -> usize {
        let zeros = self.total - self.ones;
        self.ones.abs_diff(zeros)
    }

    /// All votes agree (and there is at least one vote).
    #[must_use]
    pub fn is_unanimous(&self) -> bool {
        self.total > 0 && (self.ones == 0 || self.ones == self.total)
    }

    /// Confidence of the winner: winner votes / total (0.5 on a tie).
    #[must_use]
    pub fn confidence(&self) -> f64 {
        if self.total == 0 {
            return 0.5;
        }
        let winner_votes = self.ones.max(self.total - self.ones);
        winner_votes as f64 / self.total as f64
    }
}

impl FromIterator<bool> for MajorityVote {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

impl Extend<bool> for MajorityVote {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_majorities() {
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[true, false, false]));
        assert!(majority(&[true]));
        assert!(!majority(&[]));
    }

    #[test]
    fn even_tie_goes_false() {
        assert!(!majority(&[true, false]));
    }

    #[test]
    fn accumulator_matches_slice_vote() {
        let votes = [true, false, true, true, false];
        let acc: MajorityVote = votes.iter().copied().collect();
        assert_eq!(acc.winner(), majority(&votes));
        assert_eq!(acc.ones(), 3);
        assert_eq!(acc.total(), 5);
        assert_eq!(acc.margin(), 1);
    }

    #[test]
    fn unanimity_and_confidence() {
        let acc: MajorityVote = [true, true, true].into_iter().collect();
        assert!(acc.is_unanimous());
        assert!((acc.confidence() - 1.0).abs() < 1e-12);
        let mixed: MajorityVote = [true, false, false].into_iter().collect();
        assert!(!mixed.is_unanimous());
        assert!((mixed.confidence() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(MajorityVote::new().confidence(), 0.5);
    }

    #[test]
    fn extend_accumulates() {
        let mut acc = MajorityVote::new();
        acc.extend([true, true]);
        acc.extend([false]);
        assert!(acc.winner());
        assert_eq!(acc.total(), 3);
    }
}
