//! Bit-slice utilities shared by the codes.

/// Expands bytes into bits, LSB of each byte first (matching the bit order
/// of flash words in `flashmark-nor`).
#[must_use]
pub fn bits_from_bytes(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).map(move |i| b & (1 << i) != 0))
        .collect()
}

/// Packs bits back into bytes, LSB first. The final partial byte (if any) is
/// zero-padded in its high bits.
#[must_use]
pub fn bytes_from_bits(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| if b { acc | (1 << i) } else { acc })
        })
        .collect()
}

/// Number of positions where the two slices differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hamming_distance(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Fraction of differing positions (bit error rate between two bit strings).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn bit_error_rate(a: &[bool], b: &[bool]) -> f64 {
    assert!(
        !a.is_empty(),
        "bit error rate of empty strings is undefined"
    );
    hamming_distance(a, b) as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_bits_roundtrip() {
        let bytes = [0x54u8, 0x43, 0x00, 0xFF, 0xA5];
        assert_eq!(bytes_from_bits(&bits_from_bytes(&bytes)), bytes);
    }

    #[test]
    fn lsb_first_order() {
        let bits = bits_from_bytes(&[0b0000_0001]);
        assert!(bits[0]);
        assert!(!bits[7]);
    }

    #[test]
    fn partial_byte_zero_padded() {
        let bits = [true, false, true];
        assert_eq!(bytes_from_bits(&bits), vec![0b0000_0101]);
    }

    #[test]
    fn distance_and_ber() {
        let a = [true, true, false, false];
        let b = [true, false, false, true];
        assert_eq!(hamming_distance(&a, &b), 2);
        assert!((bit_error_rate(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn distance_rejects_mismatched_lengths() {
        let _ = hamming_distance(&[true], &[true, false]);
    }
}
