//! CRC signatures for watermark integrity.
//!
//! The paper proposes imprinting "watermark signatures" alongside the data
//! so that tampering (an attacker can only stress *more* cells, i.e. flip
//! good→bad) cannot go undetected. CRCs are the natural signature at this
//! scale; all three widths are table-free bitwise implementations (watermark
//! payloads are tens of bytes, speed is irrelevant).

/// CRC-8 (poly 0x07, init 0x00), as in ATM HEC.
#[must_use]
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
#[must_use]
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    // Check values from the canonical "123456789" test vector.
    const CHECK: &[u8] = b"123456789";

    #[test]
    fn crc8_check_value() {
        assert_eq!(crc8(CHECK), 0xF4);
    }

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16(CHECK), 0x29B1);
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc16(&[]), 0xFFFF);
        assert_eq!(crc32(&[]), 0x0000_0000);
    }

    #[test]
    fn single_bit_changes_crc() {
        let a = b"watermark:TC:ACCEPT";
        let mut b = a.to_vec();
        b[3] ^= 0x01;
        assert_ne!(crc16(a), crc16(&b));
        assert_ne!(crc32(a), crc32(&b));
        assert_ne!(crc8(a), crc8(&b));
    }
}
