//! K-way block replication with bitwise majority voting — the paper's
//! watermark-hardening scheme (Fig. 10–11).
//!
//! The data block is stored `k` times back to back (replica `r` of bit `i`
//! is channel bit `r * len + i`), and decoding takes a per-bit majority over
//! the replicas. Block-wise layout matches how the paper lays replicas into
//! a segment; combine with [`Interleaver`](crate::interleave::Interleaver)
//! to decorrelate common-mode pulse noise.

use crate::majority::MajorityVote;
use crate::{Code, CodeError, Decoded};

/// A k-way repetition code (`k` odd).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Repetition {
    k: usize,
}

impl Repetition {
    /// Creates a k-way repetition code.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameter`] unless `k` is odd and non-zero (the
    /// paper uses 3, 5, and 7; an even k would allow ties).
    pub fn new(k: usize) -> Result<Self, CodeError> {
        if k == 0 || k.is_multiple_of(2) {
            return Err(CodeError::InvalidParameter(
                "replication factor must be odd",
            ));
        }
        Ok(Self { k })
    }

    /// The replication factor.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.k
    }

    /// Decodes with soft information: per-bit vote tallies.
    ///
    /// # Errors
    ///
    /// [`CodeError::LengthMismatch`] if `received` is not a multiple of `k`.
    pub fn decode_soft(&self, received: &[bool]) -> Result<Vec<MajorityVote>, CodeError> {
        if !received.len().is_multiple_of(self.k) {
            return Err(CodeError::LengthMismatch {
                got: received.len(),
                expected: self.k,
            });
        }
        let len = received.len() / self.k;
        let mut votes = vec![MajorityVote::new(); len];
        for r in 0..self.k {
            for i in 0..len {
                votes[i].push(received[r * len + i]);
            }
        }
        Ok(votes)
    }

    /// View of one replica within an encoded stream.
    ///
    /// # Panics
    ///
    /// Panics if `replica >= k` or the length is not a multiple of `k`.
    #[must_use]
    pub fn replica<'a>(&self, received: &'a [bool], replica: usize) -> &'a [bool] {
        assert!(replica < self.k, "replica index out of range");
        assert_eq!(
            received.len() % self.k,
            0,
            "length must be a replica multiple"
        );
        let len = received.len() / self.k;
        &received[replica * len..(replica + 1) * len]
    }
}

impl Code for Repetition {
    fn encoded_len(&self, data_len: usize) -> usize {
        data_len * self.k
    }

    fn data_len(&self, encoded_len: usize) -> usize {
        encoded_len / self.k
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(data.len() * self.k);
        for _ in 0..self.k {
            out.extend_from_slice(data);
        }
        out
    }

    fn decode(&self, received: &[bool]) -> Result<Decoded, CodeError> {
        let votes = self.decode_soft(received)?;
        let data: Vec<bool> = votes.iter().map(MajorityVote::winner).collect();
        // Replica bits that disagree with the winner: min(ones, zeros).
        let corrected: usize = votes.iter().map(|v| (v.total() - v.margin()) / 2).sum();
        Ok(Decoded {
            data,
            corrected,
            detected_uncorrectable: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_or_zero_k() {
        assert!(Repetition::new(0).is_err());
        assert!(Repetition::new(4).is_err());
        assert!(Repetition::new(7).is_ok());
    }

    #[test]
    fn roundtrip_clean_channel() {
        let code = Repetition::new(3).unwrap();
        let data = vec![true, false, false, true, true];
        let rx = code.decode(&code.encode(&data)).unwrap();
        assert_eq!(rx.data, data);
        assert_eq!(rx.corrected, 0);
        assert!(!rx.detected_uncorrectable);
    }

    #[test]
    fn corrects_minority_errors() {
        let code = Repetition::new(5).unwrap();
        let data = vec![true; 10];
        let mut tx = code.encode(&data);
        // Flip bit 3 in two of the five replicas: majority still wins.
        tx[3] = false;
        tx[10 + 3] = false;
        let rx = code.decode(&tx).unwrap();
        assert_eq!(rx.data, data);
        assert_eq!(rx.corrected, 2);
    }

    #[test]
    fn majority_errors_defeat_the_code() {
        let code = Repetition::new(3).unwrap();
        let data = vec![false; 4];
        let mut tx = code.encode(&data);
        tx[1] = true;
        tx[4 + 1] = true;
        let rx = code.decode(&tx).unwrap();
        assert!(rx.data[1], "two of three replicas flipped -> decoded wrong");
    }

    #[test]
    fn replica_views() {
        let code = Repetition::new(3).unwrap();
        let data = vec![true, false];
        let tx = code.encode(&data);
        for r in 0..3 {
            assert_eq!(code.replica(&tx, r), &data[..]);
        }
    }

    #[test]
    fn soft_decode_exposes_margins() {
        let code = Repetition::new(7).unwrap();
        let data = vec![true];
        let mut tx = code.encode(&data);
        tx[0] = false;
        let votes = code.decode_soft(&tx).unwrap();
        assert_eq!(votes[0].ones(), 6);
        assert_eq!(votes[0].margin(), 5);
    }

    #[test]
    fn length_mismatch_detected() {
        let code = Repetition::new(3).unwrap();
        assert!(matches!(
            code.decode(&[true, false]).unwrap_err(),
            CodeError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn lengths() {
        let code = Repetition::new(5).unwrap();
        assert_eq!(code.encoded_len(30), 150);
        assert_eq!(code.data_len(150), 30);
    }
}
