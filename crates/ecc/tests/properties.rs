//! Property-based tests for the coding layer.

use proptest::prelude::*;

use flashmark_ecc::crc::{crc16, crc32, crc8};
use flashmark_ecc::{bits_from_bytes, bytes_from_bits, Code, Hamming, Interleaver, Repetition};

proptest! {
    /// Repetition: clean-channel round trip for any data and odd k.
    #[test]
    fn repetition_roundtrip(data in proptest::collection::vec(any::<bool>(), 1..200), k in 0usize..4) {
        let k = 2 * k + 1;
        let code = Repetition::new(k).unwrap();
        let rx = code.decode(&code.encode(&data)).unwrap();
        prop_assert_eq!(rx.data, data);
        prop_assert_eq!(rx.corrected, 0);
    }

    /// Repetition corrects any error pattern touching fewer than half the
    /// replicas of each bit.
    #[test]
    fn repetition_corrects_minority_patterns(
        data in proptest::collection::vec(any::<bool>(), 1..64),
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let k = 2 * k + 1;
        let code = Repetition::new(k).unwrap();
        let mut tx = code.encode(&data);
        // Corrupt up to (k-1)/2 replicas of each bit, chosen pseudo-randomly.
        let mut state = seed;
        let mut next = move || { state = state.wrapping_mul(6364136223846793005).wrapping_add(1); state };
        for i in 0..data.len() {
            let flips = (next() % (k as u64).div_ceil(2)) as usize;
            let mut chosen = std::collections::HashSet::new();
            while chosen.len() < flips {
                chosen.insert((next() % k as u64) as usize);
            }
            for r in chosen {
                tx[r * data.len() + i] = !tx[r * data.len() + i];
            }
        }
        let rx = code.decode(&tx).unwrap();
        prop_assert_eq!(rx.data, data);
    }

    /// Hamming: clean round trip for any whole number of blocks.
    #[test]
    fn hamming_roundtrip(data in proptest::collection::vec(any::<bool>(), 1..150), extended in any::<bool>()) {
        let code = if extended { Hamming::extended() } else { Hamming::new() };
        let rx = code.decode(&code.encode(&data)).unwrap();
        prop_assert_eq!(&rx.data[..data.len()], &data[..]);
        prop_assert!(rx.data[data.len()..].iter().all(|&b| !b));
    }

    /// Hamming corrects any single channel error in any block.
    #[test]
    fn hamming_corrects_any_single_error(
        data in proptest::collection::vec(any::<bool>(), 11..44),
        pos_seed in any::<u64>(),
        extended in any::<bool>(),
    ) {
        let code = if extended { Hamming::extended() } else { Hamming::new() };
        let mut tx = code.encode(&data);
        let pos = (pos_seed % tx.len() as u64) as usize;
        tx[pos] = !tx[pos];
        let rx = code.decode(&tx).unwrap();
        prop_assert_eq!(&rx.data[..data.len()], &data[..]);
        prop_assert_eq!(rx.corrected, 1);
    }

    /// Interleaving round-trips for any depth dividing the length.
    #[test]
    fn interleave_roundtrip(rows in 1usize..8, width in 1usize..64, seed in any::<u64>()) {
        let bits: Vec<bool> = (0..rows * width).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let il = Interleaver::new(rows).unwrap();
        let inter = il.interleave(&bits).unwrap();
        prop_assert_eq!(il.deinterleave(&inter).unwrap(), bits);
    }

    /// Bits/bytes conversions round-trip.
    #[test]
    fn bits_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bytes_from_bits(&bits_from_bytes(&bytes)), bytes);
    }

    /// Every CRC detects any single-bit corruption.
    #[test]
    fn crcs_detect_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..64), byte_seed in any::<u64>(), bit in 0u8..8) {
        let idx = (byte_seed % data.len() as u64) as usize;
        let mut corrupted = data.clone();
        corrupted[idx] ^= 1 << bit;
        prop_assert_ne!(crc8(&data), crc8(&corrupted));
        prop_assert_ne!(crc16(&data), crc16(&corrupted));
        prop_assert_ne!(crc32(&data), crc32(&corrupted));
    }

    /// Code-rate bookkeeping: encoded_len and data_len are consistent.
    #[test]
    fn length_bookkeeping(k in 0usize..4, n in 1usize..100) {
        let k = 2 * k + 1;
        let rep = Repetition::new(k).unwrap();
        prop_assert_eq!(rep.data_len(rep.encoded_len(n)), n);
        let ham = Hamming::new();
        let enc = ham.encoded_len(n);
        prop_assert!(ham.data_len(enc) >= n);
    }
}
