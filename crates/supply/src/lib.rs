#![forbid(unsafe_code)]
//! Supply-chain and counterfeiter simulation.
//!
//! The paper motivates Flashmark with three counterfeiting pathways:
//! recycled chips resold as new, rejected (fall-out) dies re-entering the
//! chain, and inferior parts re-branded as premium ones. This crate models
//! that world end to end:
//!
//! * [`Manufacturer`] runs die-sort: writes the (forgeable) TLV metadata
//!   *and* imprints the Flashmark record into the reserved segment;
//! * [`chip::Chip`] is a device plus its hidden ground-truth provenance;
//! * [`counterfeiter`] implements the attacks a counterfeiter can actually
//!   perform with full digital access to the part — erase/reprogram,
//!   metadata forgery, cloning a genuine chip's bits onto fresh silicon,
//!   additional stressing, recycling;
//! * [`SystemIntegrator`] runs the incoming-inspection workflow (verify the
//!   watermark, optionally stress-check user segments for recycling);
//! * [`scenario`] assembles mixed populations and reports detection
//!   statistics per provenance class.
//!
//! # Example
//!
//! ```
//! use flashmark_supply::scenario::{ScenarioConfig, SupplyChainScenario};
//!
//! let mut scenario = SupplyChainScenario::new(ScenarioConfig::small(0xACE));
//! let stats = scenario.run().expect("simulation runs");
//! // Every honest chip passes, every counterfeit pathway is caught.
//! assert_eq!(stats.false_positives(), 0);
//! assert_eq!(stats.false_negatives(), 0);
//! ```

pub mod chip;
pub mod counterfeiter;
pub mod integrator;
pub mod manufacturer;
pub mod puf_baseline;
pub mod report;
pub mod scenario;
pub mod usage;

pub use chip::{Chip, Provenance};
pub use counterfeiter::{Attack, AttackKind};
pub use integrator::{ChipAssessment, InspectionPolicy, SystemIntegrator};
pub use manufacturer::Manufacturer;
pub use puf_baseline::{extract_fingerprint, PufDatabase, PufFingerprint};
pub use report::DetectionStats;
pub use scenario::{ScenarioConfig, SupplyChainScenario};
pub use usage::{live_first_life, sampled_probe_segments, UsageProfile};
