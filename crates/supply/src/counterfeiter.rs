//! Counterfeiter attack models.
//!
//! Each attack uses only capabilities a real counterfeiter has: full
//! *digital* access to the part (erase, program, read — including of the
//! reserved segment), package re-marking, and unlimited additional
//! stressing. None of them can remove accumulated wear — that is the
//! physical one-way property Flashmark rests on.

use flashmark_core::{analyze_segment, CoreError, FlashmarkConfig};
use flashmark_msp430::DeviceDescriptor;
use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::SegmentAddr;

use crate::chip::Chip;

/// The attack catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Rewrite the info-memory TLV metadata to claim "accept".
    /// Defeats current practice; does not touch the wear watermark.
    MetadataForge,
    /// Erase the watermark segment and program the *data* pattern of an
    /// "accept" record. Changes charge, not wear.
    EraseAndReprogram,
    /// Stress additional cells of the watermark segment (good → bad) to try
    /// to turn the record into a different one.
    StressPadding,
    /// Read a genuine chip's watermark data and program it onto this
    /// (fresh, foreign) chip's reserved segment.
    CloneData,
}

/// A counterfeiter operation on a chip.
pub trait Attack {
    /// Which attack this is.
    fn kind(&self) -> AttackKind;

    /// Applies the attack.
    ///
    /// # Errors
    ///
    /// Flash errors (attacks themselves never "fail" logically — their
    /// futility shows up at verification).
    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError>;
}

/// Rewrites the TLV metadata as "accept" (and re-marks the package).
#[derive(Debug, Clone, Copy, Default)]
pub struct MetadataForge;

impl Attack for MetadataForge {
    fn kind(&self) -> AttackKind {
        AttackKind::MetadataForge
    }

    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError> {
        let seg = SegmentAddr::new(3);
        let mut d = DeviceDescriptor::read_from(chip.flash.info_mut(), seg)
            .map_err(CoreError::Flash)?
            .unwrap_or_default();
        d.accepted = true;
        d.write_to(chip.flash.info_mut(), seg)
            .map_err(CoreError::Flash)?;
        chip.package_marking = format!("{} (re-marked)", chip.package_marking);
        Ok(())
    }
}

/// Erases the watermark segment and programs an arbitrary target bit
/// pattern as plain data.
#[derive(Debug, Clone)]
pub struct EraseAndReprogram {
    /// The pattern (one word per segment word) the attacker programs.
    pub pattern: Vec<u16>,
}

impl Attack for EraseAndReprogram {
    fn kind(&self) -> AttackKind {
        AttackKind::EraseAndReprogram
    }

    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError> {
        let seg = chip.flash.watermark_segment();
        chip.flash.erase_segment(seg)?;
        chip.flash.program_block(seg, &self.pattern)?;
        Ok(())
    }
}

/// Stresses every remaining "good" cell of the watermark region for
/// `cycles` P/E cycles — the strongest physical tampering available.
#[derive(Debug, Clone, Copy)]
pub struct StressPadding {
    /// Additional stress cycles to apply to the whole segment.
    pub cycles: u64,
}

impl Attack for StressPadding {
    fn kind(&self) -> AttackKind {
        AttackKind::StressPadding
    }

    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError> {
        let seg = chip.flash.watermark_segment();
        // Stress all cells: wear accumulates on good cells too, turning
        // them "bad". (Already-bad cells just get worse.)
        let words = chip.flash.geometry().words_per_segment();
        chip.flash.bulk_imprint(
            seg,
            &vec![0u16; words],
            self.cycles,
            ImprintTiming::Accelerated,
        )?;
        chip.flash.erase_segment(seg)?;
        Ok(())
    }
}

/// Extracts a genuine chip's watermark *data* and programs it onto the
/// target chip's reserved segment (fresh silicon, no wear).
#[derive(Debug, Clone)]
pub struct CloneData {
    /// The manufacturer's published extraction recipe (the attacker knows
    /// it too — it is public).
    pub config: FlashmarkConfig,
    /// Bits harvested from the genuine donor chip's watermark segment.
    pub donor_bits: Vec<bool>,
}

impl CloneData {
    /// Harvests the watermark-region contents of a donor chip as raw data
    /// (what a counterfeiter's reader would capture).
    ///
    /// # Errors
    ///
    /// Flash errors.
    pub fn harvest(donor: &mut Chip, reads: usize) -> Result<Vec<bool>, CoreError> {
        let seg = donor.flash.watermark_segment();
        analyze_segment(&mut donor.flash, seg, reads)
    }
}

impl Attack for CloneData {
    fn kind(&self) -> AttackKind {
        AttackKind::CloneData
    }

    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError> {
        let seg = chip.flash.watermark_segment();
        let geometry = chip.flash.geometry();
        chip.flash.erase_segment(seg)?;
        let mut words = vec![0xFFFFu16; geometry.words_per_segment()];
        for (i, &bit) in self
            .donor_bits
            .iter()
            .enumerate()
            .take(geometry.cells_per_segment())
        {
            if !bit {
                words[i / 16] &= !(1 << (i % 16));
            }
        }
        chip.flash.program_block(seg, &words)?;
        Ok(())
    }
}

/// The most surgical tamper available: the attacker knows the record layout
/// and stresses exactly the cells of chosen bit positions (across every
/// replica), trying to rewrite the record one-way (good → bad only).
///
/// The CRC-16 signature defeats it: to land on a *different valid record*
/// the attacker would have to hit a 2⁻¹⁶ target using only 1→0 flips — and
/// the `forging_reject_records_by_one_way_flips_never_validates` test
/// samples that space.
#[derive(Debug, Clone)]
pub struct TargetedBitStress {
    /// Data-bit positions to stress (0-based within the record).
    pub bit_positions: Vec<usize>,
    /// Replicas the record was imprinted with.
    pub replicas: usize,
    /// Stress cycles to apply to those cells.
    pub cycles: u64,
}

impl Attack for TargetedBitStress {
    fn kind(&self) -> AttackKind {
        AttackKind::StressPadding
    }

    fn apply(&self, chip: &mut Chip) -> Result<(), CoreError> {
        let seg = chip.flash.watermark_segment();
        let geometry = chip.flash.geometry();
        let record_bits = flashmark_core::watermark::RECORD_BITS;
        let mut pattern = vec![0xFFFFu16; geometry.words_per_segment()];
        for &bit in &self.bit_positions {
            for r in 0..self.replicas {
                let cell = r * record_bits + bit;
                pattern[cell / 16] &= !(1 << (cell % 16));
            }
        }
        chip.flash
            .bulk_imprint(seg, &pattern, self.cycles, ImprintTiming::Accelerated)?;
        chip.flash.erase_segment(seg)?;
        Ok(())
    }
}

/// Simulates `cycles` of field use on a code/data segment (what a recycled
/// chip accumulated in its first life).
///
/// # Errors
///
/// Flash errors.
pub fn simulate_field_use(chip: &mut Chip, seg: SegmentAddr, cycles: u64) -> Result<(), CoreError> {
    let words = chip.flash.geometry().words_per_segment();
    // Real usage writes varied data; for wear purposes a programmed-everywhere
    // pattern is the conservative model.
    chip.flash
        .bulk_imprint(seg, &vec![0u16; words], cycles, ImprintTiming::Baseline)?;
    chip.flash.erase_segment(seg)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manufacturer::Manufacturer;
    use flashmark_core::{TestStatus, Verdict, Verifier};
    use flashmark_msp430::Msp430Variant;

    fn setup() -> (Manufacturer, Verifier) {
        let config = FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .build()
            .unwrap();
        let m = Manufacturer::new(0x7C01, Msp430Variant::F5438, config.clone());
        let v = Verifier::new(config, 0x7C01);
        (m, v)
    }

    #[test]
    fn metadata_forge_fools_metadata_but_not_flashmark() {
        let (mut m, v) = setup();
        let mut chip = m.produce(0xE1, TestStatus::Reject).unwrap();
        MetadataForge.apply(&mut chip).unwrap();
        // Metadata now says accept...
        let d = DeviceDescriptor::read_from(chip.flash.info_mut(), SegmentAddr::new(3))
            .unwrap()
            .unwrap();
        assert!(d.accepted);
        // ...but the wear watermark still says reject.
        let seg = chip.flash.watermark_segment();
        let report = v.verify(&mut chip.flash, seg).unwrap();
        assert_ne!(report.verdict, Verdict::Genuine);
    }

    #[test]
    fn erase_and_reprogram_cannot_remove_wear() {
        let (mut m, v) = setup();
        let mut chip = m.produce(0xE2, TestStatus::Reject).unwrap();
        let words = chip.flash.geometry().words_per_segment();
        EraseAndReprogram {
            pattern: vec![0xFFFFu16; words],
        }
        .apply(&mut chip)
        .unwrap();
        let seg = chip.flash.watermark_segment();
        let report = v.verify(&mut chip.flash, seg).unwrap();
        // Extraction reprograms the segment anyway; the reject record is
        // still read out of the wear.
        assert_ne!(
            report.verdict,
            Verdict::Genuine,
            "wear survived the reprogram"
        );
    }

    #[test]
    fn field_use_wears_segment() {
        let (mut m, _) = setup();
        let mut chip = m.produce(0xE3, TestStatus::Accept).unwrap();
        let seg = SegmentAddr::new(10);
        simulate_field_use(&mut chip, seg, 30_000).unwrap();
        let stats = chip.flash.main_mut().wear_stats(seg);
        assert!(stats.mean_cycles > 29_000.0);
    }
}
