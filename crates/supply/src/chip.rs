//! A chip in the supply chain: device plus hidden provenance.

use core::fmt;

use flashmark_msp430::{Msp430Flash, Msp430Variant};

/// Ground-truth origin of a chip (hidden from the integrator; used only to
/// score detection results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Passed die sort at the trusted manufacturer; sold new.
    GenuineAccept,
    /// Failed die sort; marked reject and scrapped — should never ship.
    GenuineReject,
    /// A genuine chip recovered from e-waste and resold as new.
    Recycled {
        /// P/E cycles of prior use on its code/data segments.
        prior_cycles: u64,
    },
    /// Fresh silicon from another fab with a genuine chip's data cloned on.
    Clone,
    /// An inferior part re-branded with the trusted manufacturer's marking
    /// (no Flashmark watermark at all).
    Rebranded,
}

impl Provenance {
    /// Whether an ideal inspection should flag this chip.
    #[must_use]
    pub fn is_counterfeit(&self) -> bool {
        !matches!(self, Self::GenuineAccept)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GenuineAccept => write!(f, "genuine (accept)"),
            Self::GenuineReject => write!(f, "genuine (reject)"),
            Self::Recycled { prior_cycles } => write!(f, "recycled ({prior_cycles} cycles)"),
            Self::Clone => write!(f, "clone"),
            Self::Rebranded => write!(f, "rebranded"),
        }
    }
}

/// A chip instance moving through the supply chain.
#[derive(Debug, Clone)]
pub struct Chip {
    /// The simulated device.
    pub flash: Msp430Flash,
    /// Ground-truth provenance (for scoring only).
    pub provenance: Provenance,
    /// Printed marking on the package (what the buyer *believes*).
    pub package_marking: String,
}

impl Chip {
    /// A fresh chip straight off the trusted line (provenance set by the
    /// caller once its fate is known).
    #[must_use]
    pub fn fresh(variant: Msp430Variant, chip_seed: u64, provenance: Provenance) -> Self {
        Self {
            flash: Msp430Flash::new(variant, chip_seed),
            provenance,
            package_marking: variant.spec().name.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counterfeit_classification() {
        assert!(!Provenance::GenuineAccept.is_counterfeit());
        assert!(Provenance::GenuineReject.is_counterfeit());
        assert!(Provenance::Recycled {
            prior_cycles: 10_000
        }
        .is_counterfeit());
        assert!(Provenance::Clone.is_counterfeit());
        assert!(Provenance::Rebranded.is_counterfeit());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Provenance::GenuineAccept.to_string(), "genuine (accept)");
        assert_eq!(
            Provenance::Recycled { prior_cycles: 5 }.to_string(),
            "recycled (5 cycles)"
        );
    }

    #[test]
    fn fresh_chip_carries_marking() {
        let c = Chip::fresh(Msp430Variant::F5529, 5, Provenance::GenuineAccept);
        assert_eq!(c.package_marking, "MSP430F5529");
    }
}
