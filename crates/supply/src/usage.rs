//! Field-usage profiles: how a chip's *first life* wears its flash.
//!
//! Recycled chips are detected by the stress their prior use left behind
//! (Section I pathway 1; the recycling probe reuses the Fig. 5 detector).
//! Real firmware does not wear flash uniformly — logging hammers a few
//! segments, firmware updates barely touch anything — so the detector's
//! probe placement matters. These profiles generate realistic wear maps for
//! that analysis.

use flashmark_core::CoreError;
use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::SegmentAddr;
use flashmark_physics::rng::SplitMix64;

use crate::chip::Chip;

/// A first-life usage pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum UsageProfile {
    /// Sensor/data logger: a small log region cycled hard and evenly.
    DataLogger {
        /// First segment of the log region.
        log_start: u32,
        /// Segments in the log region.
        log_segments: u32,
        /// P/E cycles each log segment accumulated.
        cycles: u64,
    },
    /// Occasional firmware updates: every code segment erased/rewritten a
    /// few times.
    FirmwareUpdates {
        /// Segments holding the firmware image.
        code_segments: u32,
        /// Number of updates over the product's life.
        updates: u64,
    },
    /// A wear-leveled circular buffer: writes spread over a ring, leaving a
    /// moderate, uniform signature.
    CircularBuffer {
        /// First segment of the ring.
        ring_start: u32,
        /// Segments in the ring.
        ring_segments: u32,
        /// Total segment-erase operations across the ring.
        total_erases: u64,
    },
}

impl UsageProfile {
    /// Wear (cycles) this profile puts on each touched segment.
    #[must_use]
    pub fn wear_map(&self) -> Vec<(SegmentAddr, u64)> {
        match *self {
            Self::DataLogger {
                log_start,
                log_segments,
                cycles,
            } => (0..log_segments)
                .map(|i| (SegmentAddr::new(log_start + i), cycles))
                .collect(),
            Self::FirmwareUpdates {
                code_segments,
                updates,
            } => (0..code_segments)
                .map(|i| (SegmentAddr::new(i), updates))
                .collect(),
            Self::CircularBuffer {
                ring_start,
                ring_segments,
                total_erases,
            } => {
                let per = total_erases / u64::from(ring_segments.max(1));
                (0..ring_segments)
                    .map(|i| (SegmentAddr::new(ring_start + i), per))
                    .collect()
            }
        }
    }

    /// The heaviest per-segment wear this profile causes.
    #[must_use]
    pub fn peak_cycles(&self) -> u64 {
        self.wear_map().iter().map(|&(_, c)| c).max().unwrap_or(0)
    }
}

/// Applies a first life to a chip (wear accumulates; data is wiped at
/// resale, which changes nothing about the wear).
///
/// # Errors
///
/// Flash errors.
pub fn live_first_life(chip: &mut Chip, profile: &UsageProfile) -> Result<(), CoreError> {
    let words = chip.flash.geometry().words_per_segment();
    for (seg, cycles) in profile.wear_map() {
        if cycles == 0 {
            continue;
        }
        chip.flash
            .bulk_imprint(seg, &vec![0u16; words], cycles, ImprintTiming::Baseline)?;
        chip.flash.erase_segment(seg)?;
    }
    Ok(())
}

/// Picks `count` distinct probe segments spread over the device — the
/// integrator does not know where the first life concentrated its wear, so
/// it samples.
#[must_use]
pub fn sampled_probe_segments(total_segments: u32, count: usize, seed: u64) -> Vec<SegmentAddr> {
    let mut rng = SplitMix64::new(seed);
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < count.min(total_segments as usize) {
        picked.insert(rng.range_usize(total_segments as usize) as u32);
    }
    picked.into_iter().map(SegmentAddr::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Provenance;
    use flashmark_msp430::Msp430Variant;

    #[test]
    fn wear_maps_cover_expected_segments() {
        let logger = UsageProfile::DataLogger {
            log_start: 10,
            log_segments: 3,
            cycles: 40_000,
        };
        assert_eq!(logger.wear_map().len(), 3);
        assert_eq!(logger.peak_cycles(), 40_000);

        let fw = UsageProfile::FirmwareUpdates {
            code_segments: 8,
            updates: 20,
        };
        assert_eq!(fw.peak_cycles(), 20);

        let ring = UsageProfile::CircularBuffer {
            ring_start: 0,
            ring_segments: 4,
            total_erases: 40_000,
        };
        assert_eq!(ring.peak_cycles(), 10_000);
    }

    #[test]
    fn first_life_wears_the_profiled_segments() {
        let mut chip = Chip::fresh(Msp430Variant::F5438, 0x11FE, Provenance::GenuineAccept);
        let profile = UsageProfile::DataLogger {
            log_start: 5,
            log_segments: 2,
            cycles: 20_000,
        };
        live_first_life(&mut chip, &profile).unwrap();
        let worn = chip.flash.main_mut().wear_stats(SegmentAddr::new(5));
        assert!(worn.mean_cycles > 19_000.0);
        let untouched = chip.flash.main_mut().wear_stats(SegmentAddr::new(100));
        assert!(untouched.mean_cycles < 1.0);
    }

    #[test]
    fn sampled_probes_are_distinct_and_in_range() {
        let probes = sampled_probe_segments(512, 8, 42);
        assert_eq!(probes.len(), 8);
        assert!(probes.iter().all(|s| s.index() < 512));
        let dedup: std::collections::BTreeSet<_> = probes.iter().collect();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(
            sampled_probe_segments(512, 4, 7),
            sampled_probe_segments(512, 4, 7)
        );
        assert_ne!(
            sampled_probe_segments(512, 4, 7),
            sampled_probe_segments(512, 4, 8)
        );
    }
}
