//! The trusted manufacturer's die-sort flow.

use flashmark_core::{CoreError, FlashmarkConfig, Imprinter, TestStatus, WatermarkRecord};
use flashmark_msp430::{DeviceDescriptor, DieRecord, Msp430Variant};
use flashmark_nor::SegmentAddr;

use crate::chip::{Chip, Provenance};

/// A chip manufacturer that watermarks every die at die sort.
///
/// Produces chips carrying both the *current practice* (TLV metadata in
/// info memory — trivially forgeable) and the Flashmark wear watermark, so
/// scenarios can contrast the two.
#[derive(Debug, Clone)]
pub struct Manufacturer {
    id: u16,
    variant: Msp430Variant,
    config: FlashmarkConfig,
    next_die: u64,
    lot_id: u32,
}

impl Manufacturer {
    /// Creates a manufacturer with the given public ID.
    #[must_use]
    pub fn new(id: u16, variant: Msp430Variant, config: FlashmarkConfig) -> Self {
        Self {
            id,
            variant,
            config,
            next_die: 1,
            lot_id: 0x00A1_0001,
        }
    }

    /// The manufacturer's public ID (what integrators verify against).
    #[must_use]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The imprint/extract configuration this manufacturer publishes.
    #[must_use]
    pub fn config(&self) -> &FlashmarkConfig {
        &self.config
    }

    /// Runs die sort on a new die: writes metadata, imprints the Flashmark
    /// record with the given status, and ships the chip.
    ///
    /// # Errors
    ///
    /// Imprint/flash errors.
    pub fn produce(&mut self, chip_seed: u64, status: TestStatus) -> Result<Chip, CoreError> {
        let provenance = match status {
            TestStatus::Accept => Provenance::GenuineAccept,
            TestStatus::Reject => Provenance::GenuineReject,
        };
        let mut chip = Chip::fresh(self.variant, chip_seed, provenance);
        let die_id = self.next_die;
        self.next_die += 1;

        // Current practice: plain TLV metadata in info memory.
        let descriptor = DeviceDescriptor {
            device_id: 0x5438,
            hw_revision: 1,
            fw_revision: 1,
            die: DieRecord {
                lot_id: self.lot_id,
                wafer_id: (die_id / 400) as u16,
                die_x: (die_id % 20) as u16,
                die_y: ((die_id / 20) % 20) as u16,
            },
            accepted: status == TestStatus::Accept,
        };
        descriptor
            .write_to(chip.flash.info_mut(), SegmentAddr::new(3))
            .map_err(CoreError::Flash)?;

        // Flashmark: the wear watermark in the reserved segment.
        let record = WatermarkRecord {
            manufacturer_id: self.id,
            die_id,
            speed_grade: 3,
            status,
            year_week: 2004, // (2020-2000)*100 + week 4, the paper's venue date
        };
        let seg = chip.flash.watermark_segment();
        Imprinter::new(&self.config).imprint(&mut chip.flash, seg, &record.to_watermark())?;
        Ok(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_core::{Verdict, Verifier};
    use flashmark_msp430::DeviceDescriptor;

    fn manufacturer() -> Manufacturer {
        let config = FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .build()
            .unwrap();
        Manufacturer::new(0x7C01, Msp430Variant::F5438, config)
    }

    #[test]
    fn produced_chip_verifies_genuine() {
        let mut m = manufacturer();
        let mut chip = m.produce(0x600D, TestStatus::Accept).unwrap();
        let verifier = Verifier::new(m.config().clone(), m.id());
        let seg = chip.flash.watermark_segment();
        let report = verifier.verify(&mut chip.flash, seg).unwrap();
        assert_eq!(report.verdict, Verdict::Genuine);
    }

    #[test]
    fn metadata_matches_status() {
        let mut m = manufacturer();
        let mut chip = m.produce(0xBAD0, TestStatus::Reject).unwrap();
        let d = DeviceDescriptor::read_from(chip.flash.info_mut(), SegmentAddr::new(3))
            .unwrap()
            .unwrap();
        assert!(!d.accepted);
        assert_eq!(chip.provenance, Provenance::GenuineReject);
    }

    #[test]
    fn die_ids_increment() {
        let mut m = manufacturer();
        let a = m.produce(1, TestStatus::Accept).unwrap();
        let b = m.produce(2, TestStatus::Accept).unwrap();
        drop(a);
        drop(b);
        assert_eq!(m.next_die, 3);
    }
}
