//! The system integrator's incoming-inspection workflow.

use flashmark_core::{
    CoreError, FlashmarkConfig, SegmentCondition, StressDetector, Verdict, Verifier,
};
use flashmark_nor::interface::FlashInterface;
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

use crate::chip::Chip;

/// What the integrator checks on every incoming part.
#[derive(Debug, Clone)]
pub struct InspectionPolicy {
    /// Verify the Flashmark watermark record.
    pub verify_watermark: bool,
    /// Stress-check these user segments for prior (recycled) use.
    pub recycling_probe_segments: Vec<SegmentAddr>,
    /// Detector used for the recycling probe.
    pub stress_detector: StressDetector,
}

impl InspectionPolicy {
    /// The full policy: watermark verification plus a sampled recycling
    /// probe. The integrator does not know where a first life concentrated
    /// its wear, so probes are spread over the device (the probe count
    /// trades inspection time against sensitivity to narrowly-worn chips —
    /// see the `recycled_chips_detected_across_usage_profiles` test).
    ///
    /// # Errors
    ///
    /// Configuration errors from the detector.
    pub fn full() -> Result<Self, CoreError> {
        Self::sampled(8, 0x9A0B)
    }

    /// A policy probing `count` sampled segments.
    ///
    /// # Errors
    ///
    /// Configuration errors from the detector.
    pub fn sampled(count: usize, seed: u64) -> Result<Self, CoreError> {
        // Spread probes over a typical device (512 segments); out-of-range
        // probes on smaller parts are skipped at inspection time.
        Ok(Self {
            verify_watermark: true,
            recycling_probe_segments: crate::usage::sampled_probe_segments(511, count, seed),
            stress_detector: StressDetector::new(Micros::new(23.0), 3, 0.5)?,
        })
    }
}

/// The integrator's conclusion about one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipAssessment {
    /// Watermark verdict (None if the policy skipped it).
    pub watermark: Option<Verdict>,
    /// `true` if any probed user segment showed prior stress.
    pub recycled: bool,
    /// Overall accept/flag decision.
    pub accepted: bool,
}

/// Inspects incoming chips against a manufacturer's published recipe.
#[derive(Debug, Clone)]
pub struct SystemIntegrator {
    verifier: Verifier,
    policy: InspectionPolicy,
}

impl SystemIntegrator {
    /// Creates an integrator trusting `manufacturer_id` with the published
    /// `config`.
    ///
    /// # Errors
    ///
    /// Policy construction errors.
    pub fn new(config: FlashmarkConfig, manufacturer_id: u16) -> Result<Self, CoreError> {
        Ok(Self {
            verifier: Verifier::new(config, manufacturer_id),
            policy: InspectionPolicy::full()?,
        })
    }

    /// Uses a custom policy.
    #[must_use]
    pub fn with_policy(mut self, policy: InspectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Inspects one chip.
    ///
    /// # Errors
    ///
    /// Flash errors (inspection decisions are in the assessment).
    pub fn inspect(&self, chip: &mut Chip) -> Result<ChipAssessment, CoreError> {
        let watermark = if self.policy.verify_watermark {
            let seg = chip.flash.watermark_segment();
            Some(self.verifier.verify(&mut chip.flash, seg)?.verdict)
        } else {
            None
        };

        let mut recycled = false;
        let total = chip.flash.geometry().total_segments();
        let reserved = chip.flash.watermark_segment();
        for &seg in &self.policy.recycling_probe_segments {
            if seg.index() >= total || seg == reserved {
                continue;
            }
            let report = self.policy.stress_detector.classify(&mut chip.flash, seg)?;
            recycled |= report.verdict == SegmentCondition::Stressed;
        }

        let watermark_ok = watermark.is_none_or(|v| v == Verdict::Genuine);
        Ok(ChipAssessment {
            watermark,
            recycled,
            accepted: watermark_ok && !recycled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterfeiter::simulate_field_use;
    use crate::manufacturer::Manufacturer;
    use flashmark_core::TestStatus;
    use flashmark_msp430::Msp430Variant;

    fn setup() -> (Manufacturer, SystemIntegrator) {
        let config = FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .build()
            .unwrap();
        let m = Manufacturer::new(0x7C01, Msp430Variant::F5438, config.clone());
        let i = SystemIntegrator::new(config, 0x7C01).unwrap();
        (m, i)
    }

    #[test]
    fn genuine_chip_accepted() {
        let (mut m, i) = setup();
        let mut chip = m.produce(0xAA, TestStatus::Accept).unwrap();
        let a = i.inspect(&mut chip).unwrap();
        assert_eq!(a.watermark, Some(Verdict::Genuine));
        assert!(!a.recycled);
        assert!(a.accepted);
    }

    #[test]
    fn recycled_chip_flagged() {
        let (mut m, i) = setup();
        let mut chip = m.produce(0xAB, TestStatus::Accept).unwrap();
        // First life: a wear-leveled ring over a quarter of the device, the
        // realistic recycled signature sampled probes are meant to catch.
        for seg in (0..128).step_by(4) {
            simulate_field_use(&mut chip, SegmentAddr::new(seg), 40_000).unwrap();
        }
        chip.provenance = crate::chip::Provenance::Recycled {
            prior_cycles: 40_000,
        };
        let a = i.inspect(&mut chip).unwrap();
        assert!(a.recycled, "prior-use wear must be visible");
        assert!(!a.accepted);
    }

    #[test]
    fn rejected_die_not_accepted() {
        let (mut m, i) = setup();
        let mut chip = m.produce(0xAC, TestStatus::Reject).unwrap();
        let a = i.inspect(&mut chip).unwrap();
        assert!(!a.accepted);
    }
}
