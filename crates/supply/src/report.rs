//! Population-level detection statistics.

use std::collections::BTreeMap;

use crate::chip::Provenance;

/// One provenance class's tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassTally {
    /// Chips of this class inspected.
    pub total: usize,
    /// Chips of this class flagged (not accepted) by the integrator.
    pub flagged: usize,
}

/// Detection statistics over a mixed chip population.
#[derive(Debug, Clone, Default)]
pub struct DetectionStats {
    classes: BTreeMap<String, ClassTally>,
    genuine_total: usize,
    genuine_flagged: usize,
    counterfeit_total: usize,
    counterfeit_flagged: usize,
}

impl DetectionStats {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one inspection outcome.
    pub fn record(&mut self, provenance: Provenance, label: &str, accepted: bool) {
        let tally = self.classes.entry(label.to_string()).or_default();
        tally.total += 1;
        if !accepted {
            tally.flagged += 1;
        }
        if provenance.is_counterfeit() {
            self.counterfeit_total += 1;
            if !accepted {
                self.counterfeit_flagged += 1;
            }
        } else {
            self.genuine_total += 1;
            if !accepted {
                self.genuine_flagged += 1;
            }
        }
    }

    /// Per-class tallies, sorted by label.
    #[must_use]
    pub fn classes(&self) -> &BTreeMap<String, ClassTally> {
        &self.classes
    }

    /// Genuine chips wrongly flagged.
    #[must_use]
    pub fn false_positives(&self) -> usize {
        self.genuine_flagged
    }

    /// Counterfeit chips wrongly accepted.
    #[must_use]
    pub fn false_negatives(&self) -> usize {
        self.counterfeit_total - self.counterfeit_flagged
    }

    /// True-positive rate over counterfeits (detection rate).
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.counterfeit_total == 0 {
            return 1.0;
        }
        self.counterfeit_flagged as f64 / self.counterfeit_total as f64
    }

    /// False-positive rate over genuine chips.
    #[must_use]
    pub fn false_positive_rate(&self) -> f64 {
        if self.genuine_total == 0 {
            return 0.0;
        }
        self.genuine_flagged as f64 / self.genuine_total as f64
    }

    /// Total chips inspected.
    #[must_use]
    pub fn total(&self) -> usize {
        self.genuine_total + self.counterfeit_total
    }
}

impl core::fmt::Display for DetectionStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{:<28} {:>6} {:>8}", "class", "total", "flagged")?;
        for (label, t) in &self.classes {
            writeln!(f, "{:<28} {:>6} {:>8}", label, t.total, t.flagged)?;
        }
        write!(
            f,
            "detection rate {:.1}%  false-positive rate {:.1}%",
            self.detection_rate() * 100.0,
            self.false_positive_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_computed_correctly() {
        let mut s = DetectionStats::new();
        s.record(Provenance::GenuineAccept, "genuine", true);
        s.record(Provenance::GenuineAccept, "genuine", true);
        s.record(Provenance::GenuineReject, "reject", false);
        s.record(Provenance::Clone, "clone", false);
        s.record(Provenance::Clone, "clone", true); // missed one
        assert_eq!(s.total(), 5);
        assert_eq!(s.false_positives(), 0);
        assert_eq!(s.false_negatives(), 1);
        assert!((s.detection_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.false_positive_rate(), 0.0);
    }

    #[test]
    fn empty_population_is_benign() {
        let s = DetectionStats::new();
        assert_eq!(s.detection_rate(), 1.0);
        assert_eq!(s.false_positive_rate(), 0.0);
    }

    #[test]
    fn display_lists_classes() {
        let mut s = DetectionStats::new();
        s.record(Provenance::Clone, "clone", false);
        let out = s.to_string();
        assert!(out.contains("clone"));
        assert!(out.contains("detection rate 100.0%"));
    }
}
