//! PUF-based anti-counterfeiting baseline (paper refs \[13\]–\[15\]).
//!
//! The paper argues Flashmark beats PUF-based schemes because PUFs "require
//! lengthy PUF extraction as well as maintenance of large databases with
//! entries for every manufactured chip" plus a round trip to the
//! manufacturer per verification. This module implements that baseline so
//! the comparison is concrete:
//!
//! * the fingerprint is the partial-erase response pattern of a *fresh*
//!   segment (à la Wang et al. \[15\]: process variation decides which cells
//!   flip first) — unique per chip, no imprinting needed;
//! * enrollment stores one fingerprint per die in [`PufDatabase`];
//! * verification re-extracts and matches by Hamming distance.
//!
//! What the demo shows: the PUF *does* identify genuine enrolled chips and
//! *does* expose clones (fresh silicon has a different fingerprint), but it
//! cannot mark accept/reject status, needs the database for every check —
//! and a recycled chip still matches its own enrollment, so recycling slips
//! through entirely.

use flashmark_core::CoreError;
use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

use flashmark_core::analyze_segment;

/// A chip fingerprint: the partial-erase flip pattern of a fresh segment,
/// majority-voted over several extraction rounds, with a mask of the cells
/// that responded unanimously (pulse jitter makes boundary cells flicker,
/// so they are excluded — the standard PUF "stable cell" selection, and the
/// reason PUF extraction is lengthy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PufFingerprint {
    bits: Vec<bool>,
    stable: Vec<bool>,
}

impl PufFingerprint {
    /// The majority-voted response bits.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Which cells responded unanimously across rounds.
    #[must_use]
    pub fn stable_mask(&self) -> &[bool] {
        &self.stable
    }

    /// Fraction of cells that were stable during extraction.
    #[must_use]
    pub fn stable_fraction(&self) -> f64 {
        self.stable.iter().filter(|&&s| s).count() as f64 / self.stable.len().max(1) as f64
    }

    /// Fractional Hamming distance over the cells *both* fingerprints call
    /// stable.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(
            self.bits.len(),
            other.bits.len(),
            "fingerprint lengths differ"
        );
        let mut compared = 0usize;
        let mut differing = 0usize;
        for i in 0..self.bits.len() {
            if self.stable[i] && other.stable[i] {
                compared += 1;
                differing += usize::from(self.bits[i] != other.bits[i]);
            }
        }
        if compared == 0 {
            return 1.0;
        }
        differing as f64 / compared as f64
    }
}

/// Extracts the PUF response of `seg` at challenge time `t_challenge`
/// (which should sit mid-transition for fresh cells, ~the fresh median),
/// repeated over `rounds` to build the stable-cell mask.
///
/// # Errors
///
/// Flash errors, or [`CoreError::Config`] if `rounds` is zero.
pub fn extract_fingerprint<F: FlashInterface>(
    flash: &mut F,
    seg: SegmentAddr,
    t_challenge: Micros,
    rounds: usize,
) -> Result<PufFingerprint, CoreError> {
    if rounds == 0 {
        return Err(CoreError::Config("puf extraction needs at least one round"));
    }
    let cells = flash.geometry().cells_per_segment();
    let mut ones = vec![0usize; cells];
    for _ in 0..rounds {
        flash.erase_segment(seg)?;
        flash.program_all_zero(seg)?;
        flash.partial_erase(seg, t_challenge)?;
        let round = analyze_segment(flash, seg, 1)?;
        for (count, bit) in ones.iter_mut().zip(round) {
            *count += usize::from(bit);
        }
    }
    flash.erase_segment(seg)?;
    let bits = ones.iter().map(|&c| 2 * c > rounds).collect();
    let stable = ones.iter().map(|&c| c == 0 || c == rounds).collect();
    Ok(PufFingerprint { bits, stable })
}

/// The manufacturer-side enrollment database the paper criticizes: one
/// entry per manufactured die.
#[derive(Debug, Clone, Default)]
pub struct PufDatabase {
    entries: Vec<(u64, PufFingerprint)>,
}

/// Outcome of a database match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PufMatch {
    /// The die the fingerprint matched.
    pub die_id: u64,
    /// Fractional distance to that enrollment.
    pub distance: f64,
}

impl PufDatabase {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enrolls a die.
    pub fn enroll(&mut self, die_id: u64, fingerprint: PufFingerprint) {
        self.entries.push((die_id, fingerprint));
    }

    /// Entries stored (the maintenance burden grows with every die sold).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage burden in bytes (one response bit per cell per die).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, fp)| fp.bits.len() / 8 + 8)
            .sum()
    }

    /// Finds the closest enrollment under `threshold` fractional distance.
    #[must_use]
    pub fn identify(&self, fingerprint: &PufFingerprint, threshold: f64) -> Option<PufMatch> {
        self.entries
            .iter()
            .map(|(die, fp)| PufMatch {
                die_id: *die,
                distance: fp.distance(fingerprint),
            })
            .filter(|m| m.distance <= threshold)
            .min_by(|a, b| a.distance.total_cmp(&b.distance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_msp430::Msp430Flash;

    const T_CHALLENGE: Micros = Micros::new(20.0);
    const SEG: u32 = 40;

    const ROUNDS: usize = 9;

    fn fingerprint_of(seed: u64) -> PufFingerprint {
        let mut chip = Msp430Flash::f5438(seed);
        extract_fingerprint(&mut chip, SegmentAddr::new(SEG), T_CHALLENGE, ROUNDS).unwrap()
    }

    #[test]
    fn same_chip_reproduces_its_fingerprint() {
        let mut chip = Msp430Flash::f5438(0x9F1);
        let a = extract_fingerprint(&mut chip, SegmentAddr::new(SEG), T_CHALLENGE, ROUNDS).unwrap();
        let b = extract_fingerprint(&mut chip, SegmentAddr::new(SEG), T_CHALLENGE, ROUNDS).unwrap();
        assert!(
            a.distance(&b) < 0.10,
            "intra-chip distance {}",
            a.distance(&b)
        );
        assert!(
            a.stable_fraction() > 0.3,
            "stable fraction {}",
            a.stable_fraction()
        );
    }

    #[test]
    fn different_chips_have_distant_fingerprints() {
        let a = fingerprint_of(0x9F2);
        let b = fingerprint_of(0x9F3);
        assert!(
            a.distance(&b) > 0.25,
            "inter-chip distance {}",
            a.distance(&b)
        );
    }

    #[test]
    fn database_identifies_enrolled_chips() {
        let mut db = PufDatabase::new();
        for die in 0..6u64 {
            db.enroll(die, fingerprint_of(0xE000 + die));
        }
        assert_eq!(db.len(), 6);
        assert!(db.storage_bytes() >= 6 * 512);

        // Re-extract die 3 and identify it.
        let probe = fingerprint_of(0xE003);
        let m = db.identify(&probe, 0.12).expect("enrolled chip must match");
        assert_eq!(m.die_id, 3);

        // A clone (different silicon) matches nothing.
        let clone = fingerprint_of(0xFFFF);
        assert!(db.identify(&clone, 0.12).is_none());
    }

    #[test]
    fn puf_baseline_misses_recycling() {
        // The gap the paper highlights: a recycled chip still matches its
        // own enrollment — the PUF says "genuine die", not "unused die".
        use flashmark_nor::interface::BulkStress;
        use flashmark_nor::interface::ImprintTiming;

        let mut chip = Msp430Flash::f5438(0x9F9);
        let enrolled =
            extract_fingerprint(&mut chip, SegmentAddr::new(SEG), T_CHALLENGE, ROUNDS).unwrap();
        let mut db = PufDatabase::new();
        db.enroll(1, enrolled);

        // First life wears OTHER segments heavily; the PUF segment is kept
        // fresh (as a real deployment would).
        chip.bulk_imprint(
            SegmentAddr::new(8),
            &vec![0u16; 256],
            40_000,
            ImprintTiming::Baseline,
        )
        .unwrap();
        let after_use =
            extract_fingerprint(&mut chip, SegmentAddr::new(SEG), T_CHALLENGE, ROUNDS).unwrap();
        let m = db.identify(&after_use, 0.12);
        assert!(m.is_some(), "recycled chip still passes the PUF check");
    }
}
