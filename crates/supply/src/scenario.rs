//! End-to-end supply-chain scenarios: mixed populations through inspection.

use flashmark_core::{CoreError, FlashmarkConfig, TestStatus};
use flashmark_msp430::Msp430Variant;
use flashmark_nor::interface::FlashInterface;
use flashmark_nor::SegmentAddr;
use flashmark_physics::rng::SplitMix64;

use crate::chip::{Chip, Provenance};
use crate::counterfeiter::{
    simulate_field_use, Attack, CloneData, EraseAndReprogram, MetadataForge, StressPadding,
};
use crate::integrator::SystemIntegrator;
use crate::manufacturer::Manufacturer;
use crate::report::DetectionStats;

/// Population mix of a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed (chip identities derive from it).
    pub seed: u64,
    /// Genuine accepted chips.
    pub genuine: usize,
    /// Fall-out dies pushed back into the chain (metadata forged).
    pub fallout: usize,
    /// Recycled chips (field use then resale).
    pub recycled: usize,
    /// Fresh foreign silicon with cloned watermark data.
    pub clones: usize,
    /// Re-branded chips with no watermark at all.
    pub rebranded: usize,
    /// Fall-out dies whose attacker additionally stress-pads the watermark.
    pub stress_padded: usize,
    /// Field-use cycles a recycled chip accumulated.
    pub recycled_use_cycles: u64,
    /// The manufacturer's imprint configuration.
    pub flashmark: FlashmarkConfig,
}

impl ScenarioConfig {
    /// A small but complete mix (one of each pathway, three genuine chips)
    /// that runs in seconds — used by tests and the quickstart example.
    ///
    /// # Panics
    ///
    /// Never (the built-in configuration is valid).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            genuine: 3,
            fallout: 1,
            recycled: 1,
            clones: 1,
            rebranded: 1,
            stress_padded: 1,
            recycled_use_cycles: 40_000,
            flashmark: FlashmarkConfig::builder()
                .n_pe(80_000)
                .replicas(7)
                .build()
                .expect("valid defaults"),
        }
    }
}

/// A runnable supply-chain simulation.
#[derive(Debug)]
pub struct SupplyChainScenario {
    config: ScenarioConfig,
    rng: SplitMix64,
}

impl SupplyChainScenario {
    /// Creates the scenario.
    #[must_use]
    pub fn new(config: ScenarioConfig) -> Self {
        let rng = SplitMix64::new(config.seed);
        Self { config, rng }
    }

    fn seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Builds the population, runs inspection on every chip, and tallies
    /// the results.
    ///
    /// # Errors
    ///
    /// Flash or configuration errors from the underlying procedures.
    pub fn run(&mut self) -> Result<DetectionStats, CoreError> {
        const MFG_ID: u16 = 0x7C01;
        let mut manufacturer =
            Manufacturer::new(MFG_ID, Msp430Variant::F5438, self.config.flashmark.clone());
        let integrator = SystemIntegrator::new(self.config.flashmark.clone(), MFG_ID)?;
        let mut population: Vec<(Chip, &'static str)> = Vec::new();

        for _ in 0..self.config.genuine {
            let chip = manufacturer.produce(self.seed(), TestStatus::Accept)?;
            population.push((chip, "genuine accept"));
        }

        for _ in 0..self.config.fallout {
            // A reject die stolen from the packaging site; the counterfeiter
            // forges the metadata to say accept.
            let mut chip = manufacturer.produce(self.seed(), TestStatus::Reject)?;
            MetadataForge.apply(&mut chip)?;
            population.push((chip, "fall-out, metadata forged"));
        }

        for _ in 0..self.config.stress_padded {
            // A reject die whose attacker also tries to destroy the reject
            // record by stressing the whole watermark segment.
            let mut chip = manufacturer.produce(self.seed(), TestStatus::Reject)?;
            StressPadding { cycles: 40_000 }.apply(&mut chip)?;
            population.push((chip, "fall-out, stress padded"));
        }

        for _ in 0..self.config.recycled {
            let mut chip = manufacturer.produce(self.seed(), TestStatus::Accept)?;
            // A realistic first life: wear spread over a wide region (the
            // integrator's sampled probes do not know where to look).
            for seg in (0..256u32).step_by(8) {
                simulate_field_use(
                    &mut chip,
                    SegmentAddr::new(seg),
                    self.config.recycled_use_cycles,
                )?;
            }
            chip.provenance = Provenance::Recycled {
                prior_cycles: self.config.recycled_use_cycles,
            };
            // The counterfeiter wipes the user data before resale.
            EraseAndReprogram {
                pattern: vec![0xFFFF; chip.flash.geometry().words_per_segment()],
            }
            .apply(&mut chip)?;
            population.push((chip, "recycled"));
        }

        if self.config.clones > 0 {
            // Harvest one genuine donor once.
            let mut donor = manufacturer.produce(self.seed(), TestStatus::Accept)?;
            let donor_bits = CloneData::harvest(&mut donor, 3)?;
            for _ in 0..self.config.clones {
                let mut chip = Chip::fresh(Msp430Variant::F5438, self.seed(), Provenance::Clone);
                CloneData {
                    config: self.config.flashmark.clone(),
                    donor_bits: donor_bits.clone(),
                }
                .apply(&mut chip)?;
                population.push((chip, "clone"));
            }
        }

        for _ in 0..self.config.rebranded {
            // Inferior silicon, re-marked; never saw the trusted fab's
            // die-sort imprint.
            let chip = Chip::fresh(Msp430Variant::F5529, self.seed(), Provenance::Rebranded);
            population.push((chip, "rebranded"));
        }

        let mut stats = DetectionStats::new();
        for (mut chip, label) in population {
            let assessment = integrator.inspect(&mut chip)?;
            stats.record(chip.provenance, label, assessment.accepted);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_catches_everything() {
        let mut s = SupplyChainScenario::new(ScenarioConfig::small(0xBEEF));
        let stats = s.run().unwrap();
        assert_eq!(stats.total(), 8);
        assert_eq!(
            stats.false_positives(),
            0,
            "genuine chips must pass\n{stats}"
        );
        assert_eq!(
            stats.false_negatives(),
            0,
            "all counterfeits must be caught\n{stats}"
        );
        assert_eq!(stats.detection_rate(), 1.0);
    }

    #[test]
    fn different_seeds_different_chips_same_outcome() {
        for seed in [1u64, 2, 3] {
            let stats = SupplyChainScenario::new(ScenarioConfig::small(seed))
                .run()
                .unwrap();
            assert_eq!(stats.false_negatives(), 0, "seed {seed}:\n{stats}");
        }
    }
}
