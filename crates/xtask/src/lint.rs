//! Thin driver for the `flashmark-lint-engine` static analysis pass.
//!
//! All lexing, scope analysis, and rule logic lives in
//! `crates/lint-engine`; this module only does the I/O the engine
//! deliberately avoids: walking the workspace for sources, loading the
//! committed baseline (`lint_baseline.json`), writing the deterministic
//! report (`results/lint_report.json`), and mapping the outcome to an
//! exit code for CI.

use std::path::{Path, PathBuf};

use flashmark_lint_engine::{
    analyze, baseline_from_json, baseline_to_json, BaselineEntry, Report, SourceFile,
};

/// Output format for findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Format {
    /// One `file:line: [rule] message` diagnostic per finding.
    Human,
    /// The full report JSON (same bytes as `results/lint_report.json`).
    Json,
}

/// Parsed `cargo xtask lint` options.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Options {
    /// Findings output format.
    pub format: Format,
    /// Rewrite `lint_baseline.json` from the current findings and exit 0.
    pub update_baseline: bool,
}

/// Outcome of a lint run, for exit-code mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// No unbaselined findings and no stale baseline entries.
    Clean,
    /// Unbaselined findings or stale baseline entries remain.
    Dirty,
    /// An I/O failure prevented a verdict.
    Error,
}

/// Relative path of the committed baseline.
pub(crate) const BASELINE_PATH: &str = "lint_baseline.json";
/// Relative path of the machine-readable report.
pub(crate) const REPORT_PATH: &str = "results/lint_report.json";

/// Directories under a crate that contain Rust sources worth indexing.
/// Everything feeds the pub-liveness reference index; only `src/` files
/// are classified for linting by the engine itself.
const CRATE_SUBDIRS: [&str; 4] = ["src", "tests", "examples", "benches"];

/// Walks the workspace and returns every Rust source as a [`SourceFile`]
/// with a workspace-relative, `/`-separated path. Returns `Err` with the
/// offending path on a read failure.
pub(crate) fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for sub in CRATE_SUBDIRS {
        collect_rs_files(&root.join(sub), &mut paths);
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            for sub in CRATE_SUBDIRS {
                collect_rs_files(&entry.path().join(sub), &mut paths);
            }
        }
    }
    paths.sort();

    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.contains("/fixtures/") {
            // Lint-engine test fixtures are deliberately rule-violating
            // snippets; they are exercised by the engine's own tests.
            continue;
        }
        let source = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        files.push(SourceFile { path: rel, source });
    }
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Loads the committed baseline; a missing file is an empty baseline.
fn load_baseline(root: &Path) -> Result<Vec<BaselineEntry>, String> {
    let path = root.join(BASELINE_PATH);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{BASELINE_PATH}: {e}"))?;
    baseline_from_json(&text).map_err(|e| format!("{BASELINE_PATH}: {e}"))
}

/// Writes the deterministic report under `results/`.
fn write_report(root: &Path, report: &Report) -> Result<(), String> {
    let path = root.join(REPORT_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(&path, report.to_json()).map_err(|e| format!("{REPORT_PATH}: {e}"))
}

/// Runs the full lint pass against the workspace at `root`.
pub(crate) fn run(root: &Path, options: &Options) -> Outcome {
    let files = match collect_sources(root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("xtask lint: cannot read {e}");
            return Outcome::Error;
        }
    };
    let mut report = analyze(&files);

    if options.update_baseline {
        let entries: Vec<BaselineEntry> = report
            .findings
            .iter()
            .map(|f| BaselineEntry {
                rule: f.rule.name().to_string(),
                file: f.file.clone(),
                message: f.message.clone(),
            })
            .collect();
        let path = root.join(BASELINE_PATH);
        if let Err(e) = std::fs::write(&path, baseline_to_json(&entries)) {
            eprintln!("xtask lint: cannot write {BASELINE_PATH}: {e}");
            return Outcome::Error;
        }
        println!(
            "xtask lint: baseline rewritten with {} entr{}",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
    }

    let baseline = match load_baseline(root) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return Outcome::Error;
        }
    };
    let stale = report.apply_baseline(&baseline);

    if let Err(e) = write_report(root, &report) {
        eprintln!("xtask lint: cannot write {e}");
        return Outcome::Error;
    }

    match options.format {
        Format::Json => println!("{}", report.to_json()),
        Format::Human => {
            for f in &report.findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message);
            }
            for s in &stale {
                println!(
                    "{}: [stale-baseline] baseline entry for rule `{}` no longer matches any finding: {}",
                    s.file, s.rule, s.message
                );
            }
            println!(
                "xtask lint: {} files checked, {} finding(s), {} suppressed, {} baselined, {} stale baseline entr{}",
                report.files_checked,
                report.findings.len(),
                report.suppressed,
                report.baselined,
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" }
            );
        }
    }

    if report.findings.is_empty() && stale.is_empty() {
        Outcome::Clean
    } else {
        if options.format == Format::Json && !stale.is_empty() {
            eprintln!(
                "xtask lint: {} stale baseline entr{} (run with --update-baseline)",
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" }
            );
        }
        Outcome::Dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(Path::parent)
            .map_or(manifest.clone(), Path::to_path_buf)
    }

    #[test]
    fn collect_sources_covers_the_workspace() {
        let files = collect_sources(&workspace_root()).unwrap();
        let has = |p: &str| files.iter().any(|f| f.path == p);
        assert!(has("src/lib.rs"), "root facade collected");
        assert!(has("crates/physics/src/rng.rs"), "crate sources collected");
        assert!(
            has("crates/xtask/src/lint.rs"),
            "tooling collected for the reference index"
        );
        assert!(
            files.iter().all(|f| !f.path.contains("/fixtures/")),
            "fixtures excluded"
        );
        assert!(
            files.iter().all(|f| !f.path.contains('\\')),
            "paths are /-separated"
        );
    }

    #[test]
    fn workspace_is_clean_against_committed_baseline() {
        let root = workspace_root();
        let files = collect_sources(&root).unwrap();
        let mut report = analyze(&files);
        let baseline = load_baseline(&root).unwrap();
        let stale = report.apply_baseline(&baseline);
        let diagnostics: Vec<String> = report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message))
            .collect();
        assert!(
            report.findings.is_empty(),
            "unbaselined findings:\n{}",
            diagnostics.join("\n")
        );
        assert!(
            stale.is_empty(),
            "stale baseline entries: {stale:?} (run cargo xtask lint --update-baseline)"
        );
    }

    #[test]
    fn report_matches_committed_artifact() {
        let root = workspace_root();
        let files = collect_sources(&root).unwrap();
        let mut report = analyze(&files);
        let baseline = load_baseline(&root).unwrap();
        let _stale = report.apply_baseline(&baseline);
        let committed = std::fs::read_to_string(root.join(REPORT_PATH))
            .expect("results/lint_report.json is committed");
        assert_eq!(
            report.to_json(),
            committed,
            "committed lint report is out of date: run cargo xtask lint"
        );
    }
}
