//! The flash-protocol static lint pass.
//!
//! Four rule families, all text-level (no rustc plumbing, std only):
//!
//! 1. **panic-free** — no `.unwrap()` / `.expect(` / `panic!` family in
//!    non-test code of `crates/nor` and `crates/core`: the simulator hot
//!    paths return typed `NorError` / `CoreError` values.
//! 2. **float-eq** — no direct `==` / `!=` on physics quantities (float
//!    literals or unit-wrapper `.get()` reads) in `crates/physics`,
//!    `crates/nor`, `crates/core`: exact f64 equality on simulated
//!    quantities is either a bug or an accident waiting for one.
//! 3. **nondeterminism** — no `std::time` / `rand` in the simulation
//!    crates outside `crates/physics/src/rng.rs`: every run must be
//!    reproducible from its seed.
//! 4. **missing-docs** — every `pub` item carries a doc comment (a
//!    text-level double of the workspace `missing_docs` lint, so it also
//!    fires without a full compile).
//! 5. **thread-discipline** — no raw `std::thread::spawn` /
//!    `thread::Builder` outside `crates/par`: all parallelism goes
//!    through the deterministic `TrialRunner`, which owns the
//!    merge-in-trial-order guarantee that keeps parallel runs
//!    bit-identical to serial ones.
//! 6. **print-discipline** — no `println!` / `eprintln!` in library
//!    crates: libraries report through typed results and `flashmark_obs`
//!    events; only the bench harness and this xtask own stdout/stderr.
//!
//! Test modules (`#[cfg(test)]`), comments, and string literals are
//! excluded from pattern scanning.

use std::fmt;

/// Which rule family a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rule {
    /// Panic-free hot paths in `crates/nor` / `crates/core`.
    PanicFree,
    /// No exact f64 equality on physics quantities.
    FloatEq,
    /// No wall-clock / OS randomness in simulation crates.
    Nondeterminism,
    /// Every public item documented.
    MissingDocs,
    /// No raw thread spawning outside `crates/par`.
    ThreadDiscipline,
    /// No direct printing from library crates.
    PrintDiscipline,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::PanicFree => "panic-free",
            Self::FloatEq => "float-eq",
            Self::Nondeterminism => "nondeterminism",
            Self::MissingDocs => "missing-docs",
            Self::ThreadDiscipline => "thread-discipline",
            Self::PrintDiscipline => "print-discipline",
        };
        f.write_str(s)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Finding {
    /// Workspace-relative path.
    pub(crate) file: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// The violated rule.
    pub(crate) rule: Rule,
    /// Human-readable explanation.
    pub(crate) message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RuleSet {
    /// Apply the panic-free rule.
    pub(crate) panic_free: bool,
    /// Apply the float-equality rule.
    pub(crate) float_eq: bool,
    /// Apply the nondeterminism rule.
    pub(crate) nondeterminism: bool,
    /// Apply the missing-docs rule.
    pub(crate) missing_docs: bool,
    /// Apply the thread-discipline rule.
    pub(crate) thread_discipline: bool,
    /// Apply the print-discipline rule.
    pub(crate) print_discipline: bool,
}

/// Scope for a workspace-relative path like `crates/nor/src/controller.rs`.
/// Returns `None` for files the lint pass skips entirely.
#[must_use]
pub(crate) fn rules_for(path: &str) -> Option<RuleSet> {
    let path = path.replace('\\', "/");
    // Only library/binary sources are linted; tests and benches are free to
    // unwrap, and generated/target trees are not ours.
    let in_src =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    if !in_src || !path.ends_with(".rs") {
        return None;
    }
    let crate_dir = path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("");
    let panic_free = matches!(crate_dir, "nor" | "core");
    let float_eq = matches!(crate_dir, "physics" | "nor" | "core");
    // Infrastructure crates are allowed to use the wall clock (`bench`
    // times real executions, `xtask` is this linter and must spell the
    // forbidden patterns). The RNG module is the one sanctioned entropy
    // source.
    let nondeterminism =
        !matches!(crate_dir, "bench" | "xtask") && path != "crates/physics/src/rng.rs";
    // `crates/par` is the one sanctioned home for worker threads; every
    // other crate must fan out through its deterministic `TrialRunner`.
    let thread_discipline = crate_dir != "par";
    // Library crates never print: diagnostics flow through typed errors
    // and `flashmark_obs` events. The bench harness owns its stdout and
    // this xtask must spell the forbidden patterns.
    let print_discipline = !matches!(crate_dir, "bench" | "xtask");
    Some(RuleSet {
        panic_free,
        float_eq,
        nondeterminism,
        missing_docs: true,
        thread_discipline,
        print_discipline,
    })
}

/// Lints one file's source text under the given rule set.
#[must_use]
pub(crate) fn lint_source(file: &str, source: &str, rules: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    let code = CodeLines::extract(&lines);

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        if !code.is_code[idx] {
            continue;
        }
        let stripped = &code.stripped[idx];
        if rules.panic_free {
            check_panic_free(file, line_no, stripped, &mut findings);
        }
        if rules.float_eq {
            check_float_eq(file, line_no, stripped, &mut findings);
        }
        if rules.nondeterminism {
            check_nondeterminism(file, line_no, stripped, &mut findings);
        }
        if rules.missing_docs {
            check_missing_docs(file, line_no, raw, idx, &lines, &code, &mut findings);
        }
        if rules.thread_discipline {
            check_thread_discipline(file, line_no, stripped, &mut findings);
        }
        if rules.print_discipline {
            check_print_discipline(file, line_no, stripped, &mut findings);
        }
    }
    findings
}

/// Per-line classification of a source file: which lines are non-test code,
/// with comments and string literals stripped.
struct CodeLines {
    /// `true` where the line is outside `#[cfg(test)]` blocks.
    is_code: Vec<bool>,
    /// The line with comments and string-literal contents removed.
    stripped: Vec<String>,
}

impl CodeLines {
    fn extract(lines: &[&str]) -> Self {
        let mut is_code = vec![true; lines.len()];
        let mut stripped = Vec::with_capacity(lines.len());

        // Pass 1: strip comments and strings, carrying block-comment state.
        let mut in_block_comment = false;
        for line in lines {
            let (s, still_in_comment) = strip_line(line, in_block_comment);
            in_block_comment = still_in_comment;
            stripped.push(s);
        }

        // Pass 2: blank out `#[cfg(test)]` items (attribute through the end
        // of the following brace-delimited block).
        let mut i = 0;
        while i < lines.len() {
            if stripped[i].trim_start().starts_with("#[cfg(test)]") {
                let mut depth = 0i32;
                let mut opened = false;
                let mut j = i;
                while j < lines.len() {
                    is_code[j] = false;
                    for ch in stripped[j].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            ';' if !opened => {
                                // `#[cfg(test)] use ...;` — a single item,
                                // no block to skip.
                                opened = true;
                                depth = 0;
                            }
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }

        Self { is_code, stripped }
    }
}

/// Removes comments and string-literal contents from one line. Returns the
/// stripped text and whether a `/* */` comment continues past the line end.
fn strip_line(line: &str, mut in_block_comment: bool) -> (String, bool) {
    let mut out = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    let mut in_string = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if in_block_comment {
            if c == '*' && next == Some('/') {
                in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            if c == '\\' {
                i += 2; // skip the escaped character
            } else {
                if c == '"' {
                    in_string = false;
                    out.push('"');
                }
                i += 1;
            }
            continue;
        }
        match c {
            '/' if next == Some('/') => break, // line comment: done
            '/' if next == Some('*') => {
                in_block_comment = true;
                i += 2;
            }
            '"' => {
                in_string = true;
                out.push('"');
                i += 1;
            }
            '\'' if next.is_some() && chars.get(i + 2) == Some(&'\'') => {
                // A simple char literal like 'x' — drop its content.
                out.push_str("''");
                i += 3;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // An unterminated string means a multi-line literal; treat the rest of
    // it as stripped by claiming block-comment state (cheap approximation
    // that keeps later lines from being scanned as code).
    (out, in_block_comment || in_string)
}

const PANIC_PATTERNS: [(&str, &str); 5] = [
    (
        ".unwrap()",
        "use a typed error (`?` / `ok_or`) instead of `.unwrap()`",
    ),
    (".expect(", "use a typed error instead of `.expect(...)`"),
    ("panic!", "return a typed error instead of `panic!`"),
    (
        "unreachable!",
        "restructure so the compiler proves unreachability, or return a typed error",
    ),
    ("todo!", "no `todo!` on hot paths"),
];

fn check_panic_free(file: &str, line_no: usize, code: &str, findings: &mut Vec<Finding>) {
    for (pat, msg) in PANIC_PATTERNS {
        if code.contains(pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: Rule::PanicFree,
                message: format!("`{pat}` in non-test code: {msg}"),
            });
        }
    }
}

const NONDET_PATTERNS: [&str; 6] = [
    "std::time",
    "SystemTime",
    "Instant::now",
    "time::Instant",
    "rand::",
    "thread_rng",
];

fn check_nondeterminism(file: &str, line_no: usize, code: &str, findings: &mut Vec<Finding>) {
    for pat in NONDET_PATTERNS {
        if code.contains(pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: Rule::Nondeterminism,
                message: format!(
                    "`{pat}` in a simulation crate: all entropy must flow through crates/physics/src/rng.rs"
                ),
            });
        }
    }
}

const THREAD_PATTERNS: [&str; 2] = ["thread::spawn", "thread::Builder"];

fn check_thread_discipline(file: &str, line_no: usize, code: &str, findings: &mut Vec<Finding>) {
    for pat in THREAD_PATTERNS {
        if code.contains(pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: Rule::ThreadDiscipline,
                message: format!(
                    "`{pat}` outside crates/par: fan work out through `flashmark_par::TrialRunner` so parallel runs stay bit-identical to serial ones"
                ),
            });
        }
    }
}

const PRINT_PATTERNS: [&str; 2] = ["println!", "eprintln!"];

fn check_print_discipline(file: &str, line_no: usize, code: &str, findings: &mut Vec<Finding>) {
    // `eprintln!` contains `println!` as a substring; blank it out before
    // the `println!` scan so one macro reports under one name.
    let sans_eprintln = code.replace("eprintln!", "");
    for pat in PRINT_PATTERNS {
        let scanned = if pat == "println!" {
            sans_eprintln.as_str()
        } else {
            code
        };
        if scanned.contains(pat) {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: Rule::PrintDiscipline,
                message: format!(
                    "`{pat}` in a library crate: report through typed results or emit a `flashmark_obs` event; only bench/xtask own stdout"
                ),
            });
        }
    }
}

/// Characters that may appear in a comparison operand token.
fn is_operand_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '(' | ')' | '[' | ']' | ':')
}

/// Whether an operand token reads as an f64 quantity: a float literal, a
/// unit-wrapper `.get()` read, or an `f64::` constant.
fn is_float_operand(token: &str) -> bool {
    if token.contains(".get()") || token.contains("f64::") {
        return true;
    }
    // Float literal: digits, one dot, optional fraction/exponent (`0.0`,
    // `1.5e-3`). A trailing method call like `0.5.mul_add(...)` still
    // starts with the literal.
    let mut chars = token.chars().peekable();
    let mut digits = 0;
    while chars.peek().is_some_and(char::is_ascii_digit) {
        chars.next();
        digits += 1;
    }
    digits > 0 && chars.next() == Some('.') && chars.next().map_or(true, |c| c.is_ascii_digit())
}

fn check_float_eq(file: &str, line_no: usize, code: &str, findings: &mut Vec<Finding>) {
    let bytes: Vec<char> = code.chars().collect();
    let n = bytes.len();
    for i in 0..n.saturating_sub(1) {
        let pair = (bytes[i], bytes[i + 1]);
        if pair != ('=', '=') && pair != ('!', '=') {
            continue;
        }
        // Exclude `<=`, `>=`, `..=`, `===`-like runs and compound ops.
        let prev = if i > 0 { bytes[i - 1] } else { ' ' };
        let after = bytes.get(i + 2).copied().unwrap_or(' ');
        if "=!<>+-*/%&|^.".contains(prev) || after == '=' {
            continue;
        }

        // Extract the operand tokens on each side.
        let mut l = i;
        while l > 0 && bytes[l - 1] == ' ' {
            l -= 1;
        }
        let left_end = l;
        while l > 0 && is_operand_char(bytes[l - 1]) {
            l -= 1;
        }
        let left: String = bytes[l..left_end].iter().collect();

        let mut r = i + 2;
        while r < n && bytes[r] == ' ' {
            r += 1;
        }
        let right_start = r;
        while r < n && is_operand_char(bytes[r]) {
            r += 1;
        }
        let right: String = bytes[right_start..r].iter().collect();

        if is_float_operand(&left) || is_float_operand(&right) {
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: Rule::FloatEq,
                message: format!(
                    "exact f64 comparison `{left} {}{} {right}`: compare with a tolerance or restructure",
                    bytes[i], bytes[i + 1]
                ),
            });
        }
    }
}

/// Keywords introducing public items that must carry a doc comment.
/// `pub use` re-exports are exempt, matching rustc's `missing_docs`.
const DOC_KEYWORDS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

fn check_missing_docs(
    file: &str,
    line_no: usize,
    raw: &str,
    idx: usize,
    lines: &[&str],
    code: &CodeLines,
    findings: &mut Vec<Finding>,
) {
    let trimmed = code.stripped[idx].trim_start();
    let Some(rest) = trimmed.strip_prefix("pub ") else {
        return;
    };
    let keyword = rest.split_whitespace().next().unwrap_or("");
    if !DOC_KEYWORDS.contains(&keyword) {
        return;
    }
    // `pub mod foo;` declarations document themselves with `//!` inner docs
    // inside the module file, which this line-level pass cannot see; rustc's
    // `missing_docs` covers that case. Inline `pub mod foo { .. }` still needs
    // an outer doc comment.
    if keyword == "mod" && trimmed.trim_end().ends_with(';') {
        return;
    }
    // Lines inside macro_rules! bodies (metavariables like `$name`) are
    // templates, not items; rustc checks the expansion sites instead.
    if trimmed.contains('$') {
        return;
    }
    // Walk upward over attributes looking for a doc comment.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = lines[j].trim_start();
        if above.starts_with("///") || above.starts_with("#[doc") || above.starts_with("#![doc") {
            return; // documented
        }
        // Single-line attributes are transparent.
        if above.starts_with("#[") {
            continue;
        }
        // The closing line of a multi-line attribute: skip up to and over
        // its `#[` opening line, interior lines included.
        if above.trim_end().ends_with(']') {
            while j > 0 && !lines[j].trim_start().starts_with("#[") {
                j -= 1;
            }
            continue;
        }
        break;
    }
    let item = raw.trim().chars().take(60).collect::<String>();
    findings.push(Finding {
        file: file.to_string(),
        line: line_no,
        rule: Rule::MissingDocs,
        message: format!("public item without a doc comment: `{item}`"),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOR_RULES: RuleSet = RuleSet {
        panic_free: true,
        float_eq: true,
        nondeterminism: true,
        missing_docs: true,
        thread_discipline: true,
        print_discipline: true,
    };

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn scope_selection_matches_crate_layout() {
        let nor = rules_for("crates/nor/src/controller.rs").unwrap();
        assert!(nor.panic_free && nor.float_eq && nor.nondeterminism);
        let physics = rules_for("crates/physics/src/erase.rs").unwrap();
        assert!(!physics.panic_free && physics.float_eq && physics.nondeterminism);
        let rng = rules_for("crates/physics/src/rng.rs").unwrap();
        assert!(
            !rng.nondeterminism,
            "the RNG module is the sanctioned entropy source"
        );
        let bench = rules_for("crates/bench/src/microbench.rs").unwrap();
        assert!(!bench.nondeterminism && !bench.panic_free);
        assert!(!bench.print_discipline, "the bench harness owns its stdout");
        assert!(
            nor.print_discipline && physics.print_discipline,
            "library crates never print"
        );
        assert!(
            bench.thread_discipline,
            "even the bench harness must go through TrialRunner"
        );
        let par = rules_for("crates/par/src/lib.rs").unwrap();
        assert!(
            !par.thread_discipline,
            "crates/par is the sanctioned home for worker threads"
        );
        assert!(par.nondeterminism && par.missing_docs);
        assert!(rules_for("crates/nor/tests/properties.rs").is_none());
        assert!(rules_for("crates/nor/benches/x.rs").is_none());
        assert!(rules_for("README.md").is_none());
    }

    #[test]
    fn flags_unwrap_and_expect_and_panic() {
        let src = "/// Doc.\npub fn f() {\n    let x = y.unwrap();\n    let z = w.expect(\"no\");\n    panic!(\"boom\");\n}\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::PanicFree; 3]);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[2].line, 5);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "/// D.\npub fn f() {\n    a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default();\n    d.expect_err(\"e\");\n}\n";
        assert!(lint_source("x.rs", src, NOR_RULES).is_empty());
    }

    #[test]
    fn docs_seen_through_multiline_attributes() {
        let src = "/// Documented.\n#[expect(\n    clippy::missing_panics_doc,\n    reason = \"statically valid\"\n)]\n#[must_use]\npub fn f() -> u8 {\n    0\n}\n";
        assert!(lint_source("x.rs", src, NOR_RULES).is_empty());
        // Without the doc comment the same shape is still flagged.
        let undocumented = src.strip_prefix("/// Documented.\n").unwrap();
        let f = lint_source("x.rs", undocumented, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::MissingDocs]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); assert!(a == 0.5); }\n}\n";
        assert!(lint_source("x.rs", src, NOR_RULES).is_empty());
    }

    #[test]
    fn comments_and_strings_are_exempt() {
        let src = "/// Calls `.unwrap()` never. panic! is mentioned here.\npub fn f() {\n    // a.unwrap() in a comment\n    let s = \"panic! .unwrap() 1.0 == 2.0\";\n    let _ = s;\n}\n";
        assert!(lint_source("x.rs", src, NOR_RULES).is_empty());
    }

    #[test]
    fn flags_float_equality_but_not_int() {
        let src = "/// D.\npub fn f(x: f64, s: usize) {\n    if x == 0.0 {}\n    if t.get() != limit.get() {}\n    if s == 0 || s == SAMPLES {}\n    if w == 0xFFFF {}\n    for i in 0..=5 {}\n    if s >= 3 {}\n}\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::FloatEq; 2]);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn flags_nondeterminism() {
        let src = "/// D.\npub fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert!(f.iter().any(|x| x.rule == Rule::Nondeterminism));
    }

    #[test]
    fn flags_raw_thread_spawns() {
        let src = "/// D.\npub fn f() {\n    std::thread::spawn(|| {});\n    let b = thread::Builder::new();\n}\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::ThreadDiscipline; 2]);
        assert_eq!(f[0].line, 3);
        // `thread::scope` through the par crate's runner is the sanctioned
        // shape and must not be flagged anywhere.
        let ok = "/// D.\npub fn g(r: &TrialRunner) {\n    let _ = r.threads();\n}\n";
        assert!(lint_source("x.rs", ok, NOR_RULES).is_empty());
    }

    #[test]
    fn flags_library_prints() {
        let src = "/// D.\npub fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n}\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::PrintDiscipline; 2]);
        assert_eq!(f[0].line, 3);
        // `writeln!` into a buffer the caller owns is fine.
        let ok = "/// D.\npub fn g(out: &mut String) {\n    let _ = writeln!(out, \"z\");\n}\n";
        assert!(lint_source("x.rs", ok, NOR_RULES).is_empty());
    }

    #[test]
    fn flags_undocumented_pub_items_through_attributes() {
        let src = "#[derive(Debug)]\npub struct S;\n\n/// Documented.\n#[derive(Debug)]\npub struct T;\n\npub use other::Thing;\n";
        let f = lint_source("x.rs", src, NOR_RULES);
        assert_eq!(rules_of(&f), vec![Rule::MissingDocs]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn block_comments_are_stripped() {
        let src = "/* a.unwrap()\n   panic! */\n/// D.\npub fn f() {}\n";
        assert!(lint_source("x.rs", src, NOR_RULES).is_empty());
    }

    #[test]
    fn seeded_forbidden_pattern_in_temp_file_is_flagged() {
        // End-to-end through the filesystem, as a real run sees files.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("xtask_lint_seed_{}.rs", std::process::id()));
        let source = "/// Doc.\npub fn hot_path(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        std::fs::write(&path, source).unwrap();
        let read_back = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let findings = lint_source(
            "crates/nor/src/seeded.rs",
            &read_back,
            rules_for("crates/nor/src/seeded.rs").unwrap(),
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::PanicFree);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains(".unwrap()"));
    }
}
