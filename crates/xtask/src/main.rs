//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! Currently one task: `lint`, the flash-protocol static lint pass. It
//! needs no dependencies beyond std and no rustc internals — it walks the
//! workspace sources and applies the rules in [`lint`].

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`\nusage: cargo xtask lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

/// The workspace root (this crate lives at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs_files(&entry.path().join("src"), &mut files);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = lint::rules_for(&rel) else {
            continue;
        };
        let Ok(source) = std::fs::read_to_string(file) else {
            eprintln!("xtask lint: cannot read {rel}");
            return ExitCode::FAILURE;
        };
        checked += 1;
        findings.extend(lint::lint_source(&rel, &source, rules));
    }

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("xtask lint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} finding(s) in {checked} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
