#![forbid(unsafe_code)]
//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! Currently one task: `lint`, the static analysis gate backed by
//! `crates/lint-engine`. Usage:
//!
//! ```text
//! cargo xtask lint                     # human diagnostics
//! cargo xtask lint --format json      # print the report JSON
//! cargo xtask lint --update-baseline  # rewrite lint_baseline.json
//! ```
//!
//! Every run rewrites `results/lint_report.json` (byte-identical for
//! identical sources). Exit code 0 means the workspace is clean against
//! the committed baseline; 1 means findings or stale baseline entries;
//! 2 means usage or I/O error.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--format human|json] [--update-baseline]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_options(&args[1..]) {
            Ok(options) => match lint::run(&workspace_root(), &options) {
                lint::Outcome::Clean => ExitCode::SUCCESS,
                lint::Outcome::Dirty => ExitCode::FAILURE,
                lint::Outcome::Error => ExitCode::from(2),
            },
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses the flags after `lint`.
fn parse_lint_options(args: &[String]) -> Result<lint::Options, String> {
    let mut options = lint::Options {
        format: lint::Format::Human,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                options.format = match value.as_str() {
                    "human" => lint::Format::Human,
                    "json" => lint::Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--update-baseline" => options.update_baseline = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// The workspace root (this crate lives at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn default_options() {
        let o = parse_lint_options(&[]).unwrap();
        assert_eq!(o.format, lint::Format::Human);
        assert!(!o.update_baseline);
    }

    #[test]
    fn json_format_and_update() {
        let o = parse_lint_options(&s(&["--format", "json", "--update-baseline"])).unwrap();
        assert_eq!(o.format, lint::Format::Json);
        assert!(o.update_baseline);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_lint_options(&s(&["--format"])).is_err());
        assert!(parse_lint_options(&s(&["--format", "xml"])).is_err());
        assert!(parse_lint_options(&s(&["--fast"])).is_err());
    }
}
