//! Content digests for registry records and log segments.
//!
//! The registry needs a digest that is (a) a pure function of record
//! bytes, (b) identical on every platform, and (c) dependency-free — the
//! build environment is offline, so no external hash crates. FNV-1a over
//! the canonical record line meets all three; it is a *content* digest for
//! drift detection and chain-of-custody bookkeeping, not a cryptographic
//! commitment (the threat model is accidental divergence between runs and
//! machines, not an adversary forging registry files).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit content digest, displayed as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest64(u64);

impl Digest64 {
    /// The digest of an empty chain — the root value before any record has
    /// been appended.
    pub const EMPTY: Self = Self(FNV_OFFSET);

    /// FNV-1a over `bytes`.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        Self(fold(FNV_OFFSET, bytes))
    }

    /// Extends a chain: folds this digest's bytes and `next`'s bytes into
    /// a fresh FNV-1a state. `chain_{i} = EMPTY.link(d_1).link(d_2)...`
    /// depends on every linked digest and their order.
    #[must_use]
    pub fn link(self, next: Self) -> Self {
        let mut state = fold(FNV_OFFSET, &self.0.to_le_bytes());
        state = fold(state, &next.0.to_le_bytes());
        Self(state)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The 16-digit lowercase hex form used in canonical record lines.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-digit hex form written by [`Digest64::to_hex`].
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl core::fmt::Display for Digest64 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(Digest64::of(b"").as_u64(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Digest64::of(b"a").as_u64(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Digest64::of(b"foobar").as_u64(), 0x85944171f73967e8);
    }

    #[test]
    fn hex_roundtrip() {
        let d = Digest64::of(b"record");
        assert_eq!(Digest64::from_hex(&d.to_hex()), Some(d));
        assert_eq!(d.to_hex().len(), 16);
        assert!(Digest64::from_hex("xyz").is_none());
        assert!(Digest64::from_hex("00").is_none());
    }

    #[test]
    fn chain_depends_on_order() {
        let a = Digest64::of(b"a");
        let b = Digest64::of(b"b");
        let ab = Digest64::EMPTY.link(a).link(b);
        let ba = Digest64::EMPTY.link(b).link(a);
        assert_ne!(ab, ba);
        // Re-deriving the same chain gives the same value.
        assert_eq!(ab, Digest64::EMPTY.link(a).link(b));
    }

    #[test]
    fn display_matches_to_hex() {
        let d = Digest64::of(b"x");
        assert_eq!(format!("{d}"), d.to_hex());
    }
}
