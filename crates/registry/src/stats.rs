//! Merge-commutative service aggregates: verdict mixes and retry-ladder
//! histograms.
//!
//! Shards fold their own [`ServiceStats`] and the serving layer merges
//! them with [`ServiceStats::absorb`] — a pointwise addition over
//! `BTreeMap`s, commutative and associative, so the aggregate is
//! independent of shard interleaving and worker scheduling (the same law
//! `flashmark_obs::Metrics` rests on, extended to the service's
//! dynamically-keyed per-class counters).

use std::collections::BTreeMap;

use crate::record::{Record, RecordVerdict};

/// Deterministic counters aggregated over verification records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// `(provenance class, verdict name)` → record count.
    verdict_mix: BTreeMap<(String, &'static str), u64>,
    /// Retry-ladder depth → record count.
    ladder: BTreeMap<u32, u64>,
    /// Transient-retry count → record count.
    retries: BTreeMap<u32, u64>,
    /// Non-empty verdict reason → record count (inconclusive and reject
    /// reasons; accepts carry an empty reason and are not counted here).
    reasons: BTreeMap<String, u64>,
    /// Records folded in.
    requests: u64,
}

impl ServiceStats {
    /// An empty aggregate (the merge identity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the aggregate.
    pub fn record(&mut self, r: &Record) {
        *self
            .verdict_mix
            .entry((r.class.clone(), r.verdict.name()))
            .or_insert(0) += 1;
        *self.ladder.entry(r.ladder_depth).or_insert(0) += 1;
        *self.retries.entry(r.retries).or_insert(0) += 1;
        if !r.reason.is_empty() {
            *self.reasons.entry(r.reason.clone()).or_insert(0) += 1;
        }
        self.requests += 1;
    }

    /// Pointwise-adds `other` into `self` — commutative and associative,
    /// so shard aggregates merge order-independently.
    pub fn absorb(&mut self, other: &Self) {
        for (key, v) in &other.verdict_mix {
            *self.verdict_mix.entry(key.clone()).or_insert(0) += v;
        }
        for (&depth, v) in &other.ladder {
            *self.ladder.entry(depth).or_insert(0) += v;
        }
        for (&n, v) in &other.retries {
            *self.retries.entry(n).or_insert(0) += v;
        }
        for (reason, v) in &other.reasons {
            *self.reasons.entry(reason.clone()).or_insert(0) += v;
        }
        self.requests += other.requests;
    }

    /// Records folded in.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The count of a `(class, verdict)` cell (0 if never seen).
    #[must_use]
    pub fn verdicts(&self, class: &str, verdict: RecordVerdict) -> u64 {
        self.verdict_mix
            .get(&(class.to_string(), verdict.name()))
            .copied()
            .unwrap_or(0)
    }

    /// All `(class, verdict, count)` cells in sorted order.
    pub fn verdict_mix(&self) -> impl Iterator<Item = (&str, &'static str, u64)> + '_ {
        self.verdict_mix
            .iter()
            .map(|((class, verdict), &n)| (class.as_str(), *verdict, n))
    }

    /// All `(ladder_depth, count)` bins in sorted order.
    pub fn ladder_histogram(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.ladder.iter().map(|(&d, &n)| (d, n))
    }

    /// All `(retries, count)` bins in sorted order.
    pub fn retry_histogram(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.retries.iter().map(|(&r, &n)| (r, n))
    }

    /// All `(reason, count)` cells in sorted order — the per-reason
    /// breakdown of every non-accept verdict (inconclusive causes like
    /// `transient_faults`, reject causes like `recycled_wear`).
    pub fn reason_breakdown(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.reasons.iter().map(|(r, &n)| (r.as_str(), n))
    }

    /// True when nothing has been folded in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(class: &str, verdict: RecordVerdict, ladder: u32, retries: u32) -> Record {
        Record {
            request_id: 0,
            chip_id: 0,
            class: class.into(),
            scheme: "nor_tpew".into(),
            commit: String::new(),
            params: String::new(),
            verdict,
            reason: String::new(),
            metrics: String::new(),
            ladder_depth: ladder,
            retries,
        }
    }

    #[test]
    fn folding_counts_cells_and_bins() {
        let mut s = ServiceStats::new();
        s.record(&rec("genuine", RecordVerdict::Accept, 1, 0));
        s.record(&rec("genuine", RecordVerdict::Accept, 1, 0));
        s.record(&rec("clone", RecordVerdict::Reject, 5, 2));
        assert_eq!(s.requests(), 3);
        assert_eq!(s.verdicts("genuine", RecordVerdict::Accept), 2);
        assert_eq!(s.verdicts("clone", RecordVerdict::Reject), 1);
        assert_eq!(s.verdicts("clone", RecordVerdict::Accept), 0);
        assert_eq!(
            s.ladder_histogram().collect::<Vec<_>>(),
            vec![(1, 2), (5, 1)]
        );
        assert_eq!(
            s.retry_histogram().collect::<Vec<_>>(),
            vec![(0, 2), (2, 1)]
        );
    }

    #[test]
    fn reason_breakdown_counts_nonempty_reasons() {
        let mut s = ServiceStats::new();
        s.record(&rec("genuine", RecordVerdict::Accept, 1, 0)); // empty reason
        let mut worn = rec("recycled", RecordVerdict::Reject, 1, 0);
        worn.reason = "recycled_wear".into();
        s.record(&worn);
        s.record(&worn);
        let mut flaky = rec("genuine", RecordVerdict::Inconclusive, 3, 2);
        flaky.reason = "transient_faults".into();
        s.record(&flaky);
        assert_eq!(
            s.reason_breakdown().collect::<Vec<_>>(),
            vec![("recycled_wear", 2), ("transient_faults", 1)]
        );

        // The reason map absorbs pointwise like every other cell.
        let mut other = ServiceStats::new();
        other.record(&worn);
        let mut ab = s.clone();
        ab.absorb(&other);
        let mut ba = other.clone();
        ba.absorb(&s);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.reason_breakdown().collect::<Vec<_>>(),
            vec![("recycled_wear", 3), ("transient_faults", 1)]
        );
    }

    #[test]
    fn absorb_is_commutative() {
        let mut a = ServiceStats::new();
        a.record(&rec("genuine", RecordVerdict::Accept, 1, 0));
        a.record(&rec("recycled", RecordVerdict::Reject, 1, 0));
        let mut b = ServiceStats::new();
        b.record(&rec("recycled", RecordVerdict::Accept, 2, 1));

        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.requests(), 3);
    }

    #[test]
    fn empty_is_the_identity() {
        let mut s = ServiceStats::new();
        s.record(&rec("genuine", RecordVerdict::Inconclusive, 0, 4));
        let mut merged = s.clone();
        merged.absorb(&ServiceStats::new());
        assert_eq!(merged, s);
        assert!(ServiceStats::new().is_empty());
        assert!(!s.is_empty());
    }
}
