//! The append-only registry log.
//!
//! [`Registry::append`] assigns each record its gap-free sequence number,
//! digests its canonical line, links it into the running chain digest, and
//! folds it into the [`ServiceStats`] aggregate. Every `seal_every`
//! records the current chain is frozen into a [`Seal`] — a per-segment
//! checkpoint, so two registries can be compared segment-by-segment
//! without replaying the whole log.
//!
//! Appends deduplicate on `request_id`: replaying a request batch is
//! idempotent — duplicates change neither the chain, nor the stats, nor
//! the serialized log (only the in-memory `duplicates_rejected` counter,
//! which is deliberately *not* serialized).

use std::collections::BTreeSet;
use std::path::Path;

use crate::digest::Digest64;
use crate::record::{Record, SealedRecord};
use crate::stats::ServiceStats;

/// Registry schema version written into the log header.
pub const REGISTRY_FORMAT_VERSION: u32 = 1;

/// Registry construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryOptions {
    /// Records per sealed log segment.
    pub seal_every: u64,
    /// Keep every canonical record line in memory so [`Registry::write_to`]
    /// can serialize the full log. Million-request campaigns turn this off
    /// and keep only digests, seals, and stats (bounded memory); the
    /// serialized log then contains the header, seals, and root only.
    pub retain_records: bool,
}

impl Default for RegistryOptions {
    fn default() -> Self {
        Self {
            seal_every: 1024,
            retain_records: true,
        }
    }
}

/// A frozen per-segment checkpoint of the digest chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seal {
    /// Segment index (0-based).
    pub segment: u64,
    /// First record sequence number in the segment.
    pub first_seq: u64,
    /// Last record sequence number in the segment.
    pub last_seq: u64,
    /// Chain digest after the segment's last record.
    pub chain: Digest64,
}

impl Seal {
    /// The canonical single-line JSON form written into the log.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "{{\"seal\":{},\"first_seq\":{},\"last_seq\":{},\"chain\":\"{}\"}}",
            self.segment, self.first_seq, self.last_seq, self.chain
        )
    }
}

/// Outcome of one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The record was new and is now part of the log.
    Recorded {
        /// Assigned sequence number.
        seq: u64,
        /// The record's content digest.
        digest: Digest64,
        /// The chain digest after this record.
        chain: Digest64,
    },
    /// A record with this `request_id` already exists; nothing changed.
    Duplicate {
        /// The rejected request identifier.
        request_id: u64,
    },
}

impl AppendOutcome {
    /// True when the append recorded a new entry.
    #[must_use]
    pub fn recorded(&self) -> bool {
        matches!(self, Self::Recorded { .. })
    }
}

/// The append-only provenance store.
#[derive(Debug, Clone)]
pub struct Registry {
    opts: RegistryOptions,
    next_seq: u64,
    chain: Digest64,
    seen: BTreeSet<u64>,
    lines: Vec<String>,
    seals: Vec<Seal>,
    stats: ServiceStats,
    duplicates_rejected: u64,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new(opts: RegistryOptions) -> Self {
        Self {
            opts,
            next_seq: 0,
            chain: Digest64::EMPTY,
            seen: BTreeSet::new(),
            lines: Vec::new(),
            seals: Vec::new(),
            stats: ServiceStats::new(),
            duplicates_rejected: 0,
        }
    }

    /// Appends one record (idempotent on `record.request_id`).
    pub fn append(&mut self, record: Record) -> AppendOutcome {
        if !self.seen.insert(record.request_id) {
            self.duplicates_rejected += 1;
            return AppendOutcome::Duplicate {
                request_id: record.request_id,
            };
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let sealed = SealedRecord::seal(seq, self.chain, record);
        self.chain = sealed.chain;
        self.stats.record(&sealed.record);
        if self.opts.retain_records {
            self.lines.push(sealed.line());
        }
        let (digest, chain) = (sealed.digest, sealed.chain);
        if (seq + 1).is_multiple_of(self.opts.seal_every) {
            let seal = Seal {
                segment: seq / self.opts.seal_every,
                first_seq: seq + 1 - self.opts.seal_every,
                last_seq: seq,
                chain: self.chain,
            };
            self.seals.push(seal);
            if self.opts.retain_records {
                self.lines.push(seal.line());
            }
        }
        AppendOutcome::Recorded { seq, digest, chain }
    }

    /// Records appended (duplicates excluded).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True when no record has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// The chain digest over every appended record — the log's identity.
    #[must_use]
    pub fn root(&self) -> Digest64 {
        self.chain
    }

    /// Per-segment seals frozen so far.
    #[must_use]
    pub fn seals(&self) -> &[Seal] {
        &self.seals
    }

    /// The merged verdict/ladder aggregates.
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Duplicate appends rejected (not serialized — replay must not change
    /// the log bytes).
    #[must_use]
    pub fn duplicates_rejected(&self) -> u64 {
        self.duplicates_rejected
    }

    /// Canonical record lines retained in memory (empty when
    /// `retain_records` is off). Seal lines are interleaved at their log
    /// positions.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Serializes the log: header, record/seal lines (full form) or seals
    /// only (summary form when `retain_records` is off), and the root
    /// trailer. Byte-identical for byte-identical append histories.
    #[must_use]
    pub fn contents(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"flashmark_registry\":{},\"seal_every\":{},\"full_log\":{}}}",
            REGISTRY_FORMAT_VERSION, self.opts.seal_every, self.opts.retain_records
        );
        if self.opts.retain_records {
            for line in &self.lines {
                out.push_str(line);
                out.push('\n');
            }
        } else {
            for seal in &self.seals {
                out.push_str(&seal.line());
                out.push('\n');
            }
        }
        let _ = writeln!(
            out,
            "{{\"root\":\"{}\",\"records\":{},\"seals\":{}}}",
            self.chain,
            self.next_seq,
            self.seals.len()
        );
        out
    }

    /// Writes [`Registry::contents`] to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.contents())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordVerdict;

    fn rec(request_id: u64) -> Record {
        Record {
            request_id,
            chip_id: request_id % 5,
            class: "genuine".into(),
            scheme: "nor_tpew".into(),
            commit: "test/1".into(),
            params: "{\"n_pe\":60000}".into(),
            verdict: RecordVerdict::Accept,
            reason: String::new(),
            metrics: "{\"flash.read_segment\":3}".into(),
            ladder_depth: 1,
            retries: 0,
        }
    }

    #[test]
    fn appends_assign_gapfree_sequence_numbers() {
        let mut reg = Registry::new(RegistryOptions::default());
        for id in [10u64, 20, 30] {
            assert!(reg.append(rec(id)).recorded());
        }
        assert_eq!(reg.len(), 3);
        let seqs: Vec<&str> = reg
            .lines()
            .iter()
            .map(|l| {
                l.split("\"seq\":")
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, ["0", "1", "2"]);
    }

    #[test]
    fn duplicates_change_nothing_serialized() {
        let mut a = Registry::new(RegistryOptions::default());
        let mut b = Registry::new(RegistryOptions::default());
        for id in 0..10u64 {
            a.append(rec(id));
            b.append(rec(id));
        }
        // Replay the whole batch into `b`.
        for id in 0..10u64 {
            assert!(!b.append(rec(id)).recorded());
        }
        assert_eq!(a.root(), b.root());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.contents(), b.contents());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.duplicates_rejected(), 10);
    }

    #[test]
    fn seals_freeze_every_segment() {
        let mut reg = Registry::new(RegistryOptions {
            seal_every: 4,
            retain_records: true,
        });
        for id in 0..10u64 {
            reg.append(rec(id));
        }
        assert_eq!(reg.seals().len(), 2);
        assert_eq!(reg.seals()[0].first_seq, 0);
        assert_eq!(reg.seals()[0].last_seq, 3);
        assert_eq!(reg.seals()[1].first_seq, 4);
        assert_eq!(reg.seals()[1].last_seq, 7);
        // Seal lines are interleaved at their positions: 10 records + 2 seals.
        assert_eq!(reg.lines().len(), 12);
        assert!(reg.lines()[4].starts_with("{\"seal\":0,"));
    }

    #[test]
    fn summary_form_tracks_the_same_chain() {
        let full = {
            let mut r = Registry::new(RegistryOptions {
                seal_every: 4,
                retain_records: true,
            });
            for id in 0..9u64 {
                r.append(rec(id));
            }
            r
        };
        let summary = {
            let mut r = Registry::new(RegistryOptions {
                seal_every: 4,
                retain_records: false,
            });
            for id in 0..9u64 {
                r.append(rec(id));
            }
            r
        };
        assert_eq!(full.root(), summary.root());
        assert_eq!(full.seals(), summary.seals());
        assert_eq!(full.stats(), summary.stats());
        assert!(summary.lines().is_empty());
        assert!(summary.contents().contains("\"full_log\":false"));
    }

    #[test]
    fn contents_end_with_the_root_trailer() {
        let mut reg = Registry::new(RegistryOptions::default());
        reg.append(rec(1));
        let contents = reg.contents();
        let last = contents.lines().last().unwrap();
        assert!(last.starts_with("{\"root\":\""));
        assert!(last.contains(&reg.root().to_hex()));
        assert!(contents.starts_with("{\"flashmark_registry\":1,"));
    }

    #[test]
    fn chain_differs_when_any_record_differs() {
        let mut a = Registry::new(RegistryOptions::default());
        let mut b = Registry::new(RegistryOptions::default());
        for id in 0..5u64 {
            a.append(rec(id));
            let mut r = rec(id);
            if id == 3 {
                r.verdict = RecordVerdict::Reject;
                r.reason = "recycled_wear".into();
            }
            b.append(r);
        }
        assert_ne!(a.root(), b.root());
    }
}
