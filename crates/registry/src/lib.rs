#![forbid(unsafe_code)]
//! Append-only provenance registry for chip verifications.
//!
//! The paper frames Flashmark as an incoming-inspection tool; related work
//! ("Watermarked ReRAM", "SIGNED") argues that what makes repeated
//! interrogation trustworthy is the verifier-side *record* of outcomes —
//! counterfeit detection is a chain-of-custody problem spanning many
//! inspections, not a single yes/no. This crate is that record:
//!
//! * one [`Record`] per verification — chip id, verifier commit tag,
//!   canonical recipe params, verdict, per-request metrics, retry-ladder
//!   depth — serialized as a canonical single-line JSON with a fixed field
//!   order;
//! * a deterministic FNV-1a content digest per record, linked into a
//!   running chain digest, with per-segment [`Seal`]s every `seal_every`
//!   records — so two registry files (or two runs at different
//!   `--threads`) can be compared by a single 64-bit root;
//! * idempotent appends keyed on `request_id` — replaying a request batch
//!   changes nothing;
//! * merge-commutative [`ServiceStats`] aggregates (verdict mix per
//!   provenance class, retry-ladder histograms) whose `absorb` is a
//!   pointwise `BTreeMap` addition, order-independent across shard
//!   interleavings.
//!
//! The crate is dependency-free (pure `std`): the serving layer
//! (`flashmark-serve`) maps core verdicts into records, and the bench
//! layer drives million-request campaigns against it.
//!
//! # Example
//!
//! ```
//! use flashmark_registry::{Record, RecordVerdict, Registry, RegistryOptions};
//!
//! let mut reg = Registry::new(RegistryOptions::default());
//! let outcome = reg.append(Record {
//!     request_id: 1,
//!     chip_id: 42,
//!     class: "genuine".into(),
//!     scheme: "nor_tpew".into(),
//!     commit: "flashmark/1".into(),
//!     params: "{\"n_pe\":60000}".into(),
//!     verdict: RecordVerdict::Accept,
//!     reason: String::new(),
//!     metrics: "{}".into(),
//!     ladder_depth: 1,
//!     retries: 0,
//! });
//! assert!(outcome.recorded());
//! // Replaying the same request is a no-op.
//! # let again = reg.append(Record { request_id: 1, chip_id: 42,
//! #     class: "genuine".into(), scheme: "nor_tpew".into(), commit: "flashmark/1".into(),
//! #     params: "{\"n_pe\":60000}".into(), verdict: RecordVerdict::Accept,
//! #     reason: String::new(), metrics: "{}".into(), ladder_depth: 1, retries: 0 });
//! # assert!(!again.recorded());
//! assert_eq!(reg.len(), 1);
//! ```

pub mod digest;
pub mod record;
pub mod stats;
pub mod store;

pub use digest::Digest64;
pub use record::{json_string, Record, RecordVerdict, SealedRecord};
pub use stats::ServiceStats;
pub use store::{AppendOutcome, Registry, RegistryOptions, Seal, REGISTRY_FORMAT_VERSION};
