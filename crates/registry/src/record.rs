//! The provenance record schema and its canonical line encoding.
//!
//! One [`Record`] is written per verification request. Its canonical form
//! is a single-line JSON object with a **fixed field order**; the record's
//! content digest is FNV-1a over that line with the digest fields omitted,
//! so any drift in the schema, the field order, or the values changes the
//! digest (and the golden-schema test fails loudly).

use crate::digest::Digest64;

/// Verdict class of a registry record.
///
/// This is the registry's *archival* view of a verification outcome: the
/// serving layer maps the core `Verdict` (Genuine / Counterfeit /
/// Inconclusive) plus the recycling-probe result onto an incoming-
/// inspection decision — accept the part, reject it, or re-inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordVerdict {
    /// The part passed inspection and enters the build.
    Accept,
    /// The part failed inspection (counterfeit watermark or recycled wear).
    Reject,
    /// The part could not be judged and must be re-inspected.
    Inconclusive,
}

impl RecordVerdict {
    /// Stable lowercase label used in canonical record lines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Accept => "accept",
            Self::Reject => "reject",
            Self::Inconclusive => "inconclusive",
        }
    }
}

impl core::fmt::Display for RecordVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One verification's provenance record, before the registry assigns its
/// sequence number and digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Caller-chosen unique request identifier — the idempotence key.
    /// Replaying a request with an identifier the registry has already
    /// recorded is a no-op.
    pub request_id: u64,
    /// The inspected chip's identifier (lot/tray position or die id).
    pub chip_id: u64,
    /// Declared provenance class of the lot the chip arrived in (the load
    /// generator uses ground truth here, so verdict mixes can be scored
    /// per class).
    pub class: String,
    /// Watermark scheme that produced the verdict (`"nor_tpew"`,
    /// `"nand_puf"`, `"reram_forming"` — the `WatermarkScheme::name`
    /// vocabulary), so fleet records from different backends stay
    /// distinguishable in one registry.
    pub scheme: String,
    /// Verifier build tag recorded for audit (schema version + recipe id).
    pub commit: String,
    /// Canonical one-line JSON of the published extraction recipe the
    /// verifier ran with (embedded verbatim — it must already be valid
    /// single-line JSON).
    pub params: String,
    /// The inspection decision.
    pub verdict: RecordVerdict,
    /// Stable reason label behind a reject/inconclusive verdict (empty for
    /// accepts).
    pub reason: String,
    /// Canonical one-line JSON of the per-request observability counters
    /// (embedded verbatim).
    pub metrics: String,
    /// Retry-ladder rungs the verifier walked before the verdict settled.
    pub ladder_depth: u32,
    /// Transient-fault retries the verifier spent.
    pub retries: u32,
}

/// A record as stored: sequence number assigned, digests computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedRecord {
    /// Position in the registry log (0-based, gap-free).
    pub seq: u64,
    /// FNV-1a content digest of the canonical payload line.
    pub digest: Digest64,
    /// Chain digest after linking this record: `prev_chain.link(digest)`.
    pub chain: Digest64,
    /// The record itself.
    pub record: Record,
}

impl SealedRecord {
    /// Seals `record` at `seq` on top of `prev_chain`.
    #[must_use]
    pub fn seal(seq: u64, prev_chain: Digest64, record: Record) -> Self {
        let digest = Digest64::of(payload_line(seq, &record).as_bytes());
        Self {
            seq,
            digest,
            chain: prev_chain.link(digest),
            record,
        }
    }

    /// The canonical registry line: the digest-free payload with the
    /// `digest` and `chain` fields appended before the closing brace.
    #[must_use]
    pub fn line(&self) -> String {
        use core::fmt::Write as _;
        let mut line = payload_line(self.seq, &self.record);
        line.pop(); // strip the closing brace
        let _ = write!(
            line,
            ",\"digest\":\"{}\",\"chain\":\"{}\"}}",
            self.digest, self.chain
        );
        line
    }
}

/// The canonical single-line JSON payload the record digest covers. Field
/// order is part of the schema; any change breaks the golden fixture.
fn payload_line(seq: u64, r: &Record) -> String {
    format!(
        "{{\"seq\":{},\"request_id\":{},\"chip_id\":{},\"class\":{},\"scheme\":{},\
         \"verdict\":\"{}\",\
         \"reason\":{},\"ladder_depth\":{},\"retries\":{},\"commit\":{},\
         \"params\":{},\"metrics\":{}}}",
        seq,
        r.request_id,
        r.chip_id,
        json_string(&r.class),
        json_string(&r.scheme),
        r.verdict.name(),
        json_string(&r.reason),
        r.ladder_depth,
        r.retries,
        json_string(&r.commit),
        embed_json(&r.params),
        embed_json(&r.metrics),
    )
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    use core::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Embeds a pre-canonicalized JSON fragment, falling back to `null` for an
/// empty string and to a quoted string for anything that is clearly not a
/// JSON object/array (defensive: a malformed fragment must not corrupt the
/// line's structure).
fn embed_json(fragment: &str) -> String {
    let t = fragment.trim();
    if t.is_empty() {
        "null".to_string()
    } else if (t.starts_with('{') && t.ends_with('}')) || (t.starts_with('[') && t.ends_with(']')) {
        t.to_string()
    } else {
        json_string(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        Record {
            request_id: 7,
            chip_id: 3,
            class: "genuine".into(),
            scheme: "nor_tpew".into(),
            commit: "flashmark-registry/1".into(),
            params: "{\"n_pe\":60000}".into(),
            verdict: RecordVerdict::Accept,
            reason: String::new(),
            metrics: "{\"flash.read_segment\":5}".into(),
            ladder_depth: 1,
            retries: 0,
        }
    }

    #[test]
    fn line_is_single_line_json_with_fixed_field_order() {
        let sealed = SealedRecord::seal(0, Digest64::EMPTY, record());
        let line = sealed.line();
        assert!(!line.contains('\n'));
        let order = [
            "\"seq\":",
            "\"request_id\":",
            "\"chip_id\":",
            "\"class\":",
            "\"scheme\":",
            "\"verdict\":",
            "\"reason\":",
            "\"ladder_depth\":",
            "\"retries\":",
            "\"commit\":",
            "\"params\":",
            "\"metrics\":",
            "\"digest\":",
            "\"chain\":",
        ];
        let mut last = 0;
        for key in order {
            let at = line
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing: {line}"));
            assert!(at >= last, "{key} out of order: {line}");
            last = at;
        }
        assert!(line.contains("\"params\":{\"n_pe\":60000}"));
    }

    #[test]
    fn digest_covers_every_payload_field() {
        let base = SealedRecord::seal(0, Digest64::EMPTY, record());
        let mut altered = record();
        altered.ladder_depth = 2;
        assert_ne!(
            SealedRecord::seal(0, Digest64::EMPTY, altered).digest,
            base.digest
        );
        let mut altered = record();
        altered.reason = "recycled_wear".into();
        assert_ne!(
            SealedRecord::seal(0, Digest64::EMPTY, altered).digest,
            base.digest
        );
        // The same record at a different seq digests differently too.
        assert_ne!(
            SealedRecord::seal(1, Digest64::EMPTY, record()).digest,
            base.digest
        );
    }

    #[test]
    fn chain_links_the_previous_record() {
        let a = SealedRecord::seal(0, Digest64::EMPTY, record());
        let b = SealedRecord::seal(1, a.chain, record());
        assert_eq!(b.chain, a.chain.link(b.digest));
        assert_ne!(a.chain, b.chain);
    }

    #[test]
    fn string_escaping_and_fragment_embedding() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(embed_json(""), "null");
        assert_eq!(embed_json("{\"k\":1}"), "{\"k\":1}");
        assert_eq!(embed_json("not json"), "\"not json\"");
    }
}
