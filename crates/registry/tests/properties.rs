//! Property tests of the two laws the fleet-scale registry rests on:
//!
//! * [`ServiceStats::absorb`] is commutative and associative, so the
//!   campaign aggregate is independent of how requests were sharded and of
//!   which worker finished first — the same merge law
//!   `flashmark_obs::Metrics` obeys, extended to the service's
//!   dynamically-keyed per-class verdict mix.
//! * [`Registry::append`] is idempotent on `request_id`, so replaying any
//!   portion of a request stream never changes the log's root digest,
//!   record count, or aggregates.

use proptest::prelude::*;

use flashmark_registry::{Record, RecordVerdict, Registry, RegistryOptions, ServiceStats};

const SCHEMES: [&str; 3] = ["nor_tpew", "nand_puf", "reram_forming"];

const CLASSES: [&str; 5] = [
    "genuine",
    "fallout_forged",
    "recycled",
    "clone",
    "rebranded",
];

/// Decodes one `u64` into a verification record so proptest strategies
/// stay plain integer vectors. `request_id` is assigned by the caller.
fn record_from(op: u64, request_id: u64) -> Record {
    let verdict = match op % 3 {
        0 => RecordVerdict::Accept,
        1 => RecordVerdict::Reject,
        _ => RecordVerdict::Inconclusive,
    };
    Record {
        request_id,
        chip_id: (op >> 2) & 0x7F,
        class: CLASSES[(op >> 9) as usize % CLASSES.len()].to_string(),
        scheme: SCHEMES[(op >> 11) as usize % SCHEMES.len()].to_string(),
        commit: "prop".to_string(),
        params: "{}".to_string(),
        verdict,
        reason: String::new(),
        metrics: "{}".to_string(),
        ladder_depth: (op >> 12) as u32 % 6,
        retries: (op >> 15) as u32 % 4,
    }
}

/// Splits the encoded stream into per-shard chunks and folds each shard's
/// own [`ServiceStats`], exactly as the serving layer's workers do.
fn shard_stats(ops: &[u64], chunk: usize) -> Vec<ServiceStats> {
    ops.chunks(chunk.max(1))
        .enumerate()
        .map(|(shard, chunk_ops)| {
            let mut stats = ServiceStats::new();
            for (i, &op) in chunk_ops.iter().enumerate() {
                stats.record(&record_from(op, (shard * 1000 + i) as u64));
            }
            stats
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward merge, reverse merge, and a two-phase tree merge of the
    /// same per-shard aggregates all agree, and all equal the single-shard
    /// sequential fold — the verdict mix and both histograms cannot depend
    /// on shard interleaving.
    #[test]
    fn stats_merge_is_order_independent(
        ops in proptest::collection::vec(any::<u64>(), 0..200),
        chunk in 1usize..17,
    ) {
        let per_shard = shard_stats(&ops, chunk);

        let mut forward = ServiceStats::new();
        for s in &per_shard {
            forward.absorb(s);
        }
        let mut reverse = ServiceStats::new();
        for s in per_shard.iter().rev() {
            reverse.absorb(s);
        }
        let mut tree = ServiceStats::new();
        for pair in per_shard.chunks(2) {
            let mut partial = ServiceStats::new();
            for s in pair {
                partial.absorb(s);
            }
            tree.absorb(&partial);
        }
        // The unsharded fold: one worker seeing the whole stream.
        let serial = shard_stats(&ops, ops.len().max(1))
            .pop()
            .unwrap_or_default();

        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(&forward, &tree);
        prop_assert_eq!(forward.requests(), ops.len() as u64);
        prop_assert_eq!(
            forward.verdict_mix().collect::<Vec<_>>(),
            serial.verdict_mix().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            forward.ladder_histogram().collect::<Vec<_>>(),
            serial.ladder_histogram().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            forward.retry_histogram().collect::<Vec<_>>(),
            serial.retry_histogram().collect::<Vec<_>>()
        );
    }

    /// Absorbing an empty aggregate is a no-op in either direction.
    #[test]
    fn empty_is_the_merge_identity(
        ops in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let s = shard_stats(&ops, ops.len().max(1)).pop().unwrap_or_default();
        let mut left = ServiceStats::new();
        left.absorb(&s);
        let mut right = s.clone();
        right.absorb(&ServiceStats::new());
        prop_assert_eq!(&left, &s);
        prop_assert_eq!(&right, &s);
    }

    /// Replaying any interleaving of already-appended records leaves the
    /// registry untouched: same root digest, same record count, same
    /// aggregates, same serialized bytes — duplicates only bump the
    /// rejection counter.
    #[test]
    fn duplicate_append_is_idempotent(
        ops in proptest::collection::vec(any::<u64>(), 1..80),
        seal_every in 1u64..16,
        replay_stride in 1usize..5,
    ) {
        let mut registry = Registry::new(RegistryOptions {
            seal_every,
            retain_records: true,
        });
        for (i, &op) in ops.iter().enumerate() {
            registry.append(record_from(op, i as u64));
        }
        let root = registry.root();
        let len = registry.len();
        let stats = registry.stats().clone();
        let contents = registry.contents();

        // Replay a subsequence (stride picks which ids repeat).
        let mut replayed = 0u64;
        for (i, &op) in ops.iter().enumerate().step_by(replay_stride) {
            registry.append(record_from(op, i as u64));
            replayed += 1;
        }

        prop_assert_eq!(registry.root(), root, "root digest changed on replay");
        prop_assert_eq!(registry.len(), len);
        prop_assert_eq!(registry.stats(), &stats);
        prop_assert_eq!(registry.contents(), contents);
        prop_assert_eq!(registry.duplicates_rejected(), replayed);
    }
}
