//! Golden-vector regression pinning the registry record schema: builds a
//! three-record log — one record per verdict class, all inputs fixed — and
//! compares the serialized registry byte-for-byte against the committed
//! `results/registry_golden.log`, mirroring the fig05 golden test. Any
//! drift in the canonical field order, the string escaping, the digest
//! function, or the seal/trailer framing shows up here as an exact-byte
//! mismatch rather than a silently changed log format.
//!
//! To regenerate after an *intentional* schema change:
//! `FLASHMARK_REGEN_GOLDEN=1 cargo test -p flashmark-registry --test golden_schema`

use std::path::PathBuf;

use flashmark_registry::{Record, RecordVerdict, Registry, RegistryOptions};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/registry_golden.log")
}

/// The fixed params line every golden record carries: the campaign recipe
/// in the serving layer's canonical key order.
const PARAMS: &str = "{\"n_pe\":60000,\"t_pew_us\":23,\"replicas\":5,\"reads\":1,\
                      \"layout\":\"interleaved\",\"accelerated\":true}";

/// One fully pinned record per verdict class, shaped exactly like the
/// verification service's output (accepts carry an empty reason; rejects
/// and inconclusives carry a stable reason label and the obs-derived
/// ladder/retry scalars).
fn golden_records() -> Vec<Record> {
    vec![
        Record {
            request_id: 0,
            chip_id: 17,
            class: "genuine".to_string(),
            scheme: "nor_tpew".to_string(),
            commit: "flashmark-serve/golden".to_string(),
            params: PARAMS.to_string(),
            verdict: RecordVerdict::Accept,
            reason: String::new(),
            metrics: "{\"flash.read_word\":4096,\"ladder.rung\":1}".to_string(),
            ladder_depth: 1,
            retries: 0,
        },
        Record {
            request_id: 1,
            chip_id: 92,
            class: "rebranded".to_string(),
            scheme: "nand_puf".to_string(),
            commit: "flashmark-serve/golden".to_string(),
            params: PARAMS.to_string(),
            verdict: RecordVerdict::Reject,
            reason: "no_watermark".to_string(),
            metrics: "{\"flash.read_word\":4096,\"ladder.rung\":1}".to_string(),
            ladder_depth: 1,
            retries: 0,
        },
        Record {
            request_id: 2,
            chip_id: 45,
            class: "recycled".to_string(),
            scheme: "reram_forming".to_string(),
            commit: "flashmark-serve/golden".to_string(),
            params: PARAMS.to_string(),
            verdict: RecordVerdict::Inconclusive,
            reason: "transient_faults".to_string(),
            metrics: "{\"flash.read_word\":20480,\"ladder.rung\":5,\"retry.transient\":3}"
                .to_string(),
            ladder_depth: 5,
            retries: 3,
        },
    ]
}

fn golden_registry() -> Registry {
    // seal_every: 2 so the fixture also pins the seal-line framing: one
    // seal covers records 0–1, record 2 stays in the open segment.
    let mut registry = Registry::new(RegistryOptions {
        seal_every: 2,
        retain_records: true,
    });
    for record in golden_records() {
        registry.append(record);
    }
    registry
}

#[test]
fn registry_log_matches_committed_golden_fixture() {
    let registry = golden_registry();
    let contents = registry.contents();
    let path = fixture_path();

    if std::env::var_os("FLASHMARK_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &contents).expect("write fixture");
        return;
    }

    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        contents, committed,
        "registry serialization drifted from results/registry_golden.log \
         (regenerate with FLASHMARK_REGEN_GOLDEN=1 only for intentional \
         schema changes)"
    );
}

#[test]
fn golden_log_pins_one_record_per_verdict_class() {
    let registry = golden_registry();
    assert_eq!(registry.len(), 3);
    assert_eq!(registry.seals().len(), 1, "records 0-1 must be sealed");
    let records: Vec<&String> = registry
        .lines()
        .iter()
        .filter(|l| !l.starts_with("{\"seal\""))
        .collect();
    assert_eq!(records.len(), 3);
    for (line, verdict) in records.iter().zip(["accept", "reject", "inconclusive"]) {
        assert!(
            line.contains(&format!("\"verdict\":\"{verdict}\"")),
            "expected a {verdict} record: {line}"
        );
        // Every record line carries the full canonical schema.
        for key in [
            "\"seq\":",
            "\"request_id\":",
            "\"chip_id\":",
            "\"class\":",
            "\"verdict\":",
            "\"reason\":",
            "\"ladder_depth\":",
            "\"retries\":",
            "\"commit\":",
            "\"params\":",
            "\"metrics\":",
            "\"digest\":",
            "\"chain\":",
        ] {
            assert!(line.contains(key), "{key} missing from record line: {line}");
        }
    }
}
