#![forbid(unsafe_code)]
//! Cross-run trend registry: an append-only, digest-chained log of
//! campaign outcomes and the drift gates computed over it.
//!
//! CI gates elsewhere in this repository compare each run against the
//! *last* committed baseline; this crate records **every** run so
//! detection-rate and performance regressions can be trended across pull
//! requests. Each suite / service / perf campaign appends one
//! [`TrendRecord`] — build tag, seed, params digest, verdict mix per
//! provenance class, fault-campaign flip count, obs op count, kernel
//! throughputs — to `results/trend_log.jsonl` as a canonical single-line
//! JSON, chained record-to-record with the same FNV-1a
//! [`Digest64`](flashmark_registry::Digest64) the provenance registry
//! uses, so a tampered or truncated log is detected on load.
//!
//! [`compute_drift`] turns a verified log into a [`DriftReport`]:
//!
//! * **detection drift fails**: within a `(kind, params, seed)` group, the
//!   latest record must not move any provenance class toward acceptance
//!   (accept count up while reject+inconclusive down) relative to its
//!   predecessor, and a recorded fault-campaign flip count must be zero —
//!   a silent reject→accept movement is exactly the regression a
//!   counterfeit-detection pipeline must never absorb;
//! * **performance drift warns**: the latest run's `trials/s` entries are
//!   compared against the median of the previous window; wall-clock noise
//!   across machines makes this advisory, never a gate.
//!
//! Determinism: records written by deterministic campaigns carry no
//! wall-clock fields (their `perf` map is empty), so appending the same
//! campaign at `--threads 1` and `--threads 8` produces byte-identical
//! lines, and the drift report over the log is byte-identical too.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

use flashmark_registry::Digest64;

/// Trend-log schema version (bumped on any canonical-line change).
pub const TREND_FORMAT_VERSION: u32 = 1;

/// One campaign outcome, as appended to the trend log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrendRecord {
    /// Campaign kind (`"suite"`, `"service"`, `"perf"`, …). Drift is only
    /// ever computed within one kind.
    pub kind: String,
    /// Build tag of the producer (crate name/version).
    pub build: String,
    /// Campaign seed.
    pub seed: u64,
    /// Digest (hex) of the campaign's canonical parameter string — two
    /// records are only comparable when their params digests match.
    pub params: String,
    /// `(provenance class, verdict name)` → record count.
    pub verdict_mix: BTreeMap<(String, String), u64>,
    /// Fault-campaign reject→accept flip count, when the campaign ran one.
    pub flips: Option<u64>,
    /// Total obs events emitted, when the campaign collected them.
    pub ops: Option<u64>,
    /// Throughput entries (`name` → trials/s). Non-empty only for
    /// wall-clock-bearing kinds (`perf`); deterministic kinds leave it
    /// empty so their lines stay byte-identical across machines.
    pub perf: BTreeMap<String, f64>,
}

impl TrendRecord {
    /// A record with the given identity and no measurements.
    #[must_use]
    pub fn new(kind: &str, build: &str, seed: u64, params_digest: Digest64) -> Self {
        Self {
            kind: kind.to_string(),
            build: build.to_string(),
            seed,
            params: params_digest.to_hex(),
            ..Self::default()
        }
    }

    /// The canonical single-line JSON payload (fixed field order, no
    /// seq/chain framing) — the bytes the content digest covers.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        use fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"kind\":\"{}\",\"build\":\"{}\",\"seed\":{},\"params\":\"{}\"",
            self.kind, self.build, self.seed, self.params
        );
        out.push_str(",\"verdict_mix\":{");
        for (i, ((class, verdict), n)) in self.verdict_mix.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{class}/{verdict}\":{n}");
        }
        out.push('}');
        match self.flips {
            Some(n) => {
                let _ = write!(out, ",\"flips\":{n}");
            }
            None => out.push_str(",\"flips\":null"),
        }
        match self.ops {
            Some(n) => {
                let _ = write!(out, ",\"ops\":{n}");
            }
            None => out.push_str(",\"ops\":null"),
        }
        out.push_str(",\"perf\":{");
        for (i, (name, v)) in self.perf.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("}}");
        out
    }

    /// This record's content digest: FNV-1a over the canonical line.
    #[must_use]
    pub fn digest(&self) -> Digest64 {
        Digest64::of(self.canonical_line().as_bytes())
    }

    /// Accept count and non-accept (reject + inconclusive) count for one
    /// provenance class.
    #[must_use]
    pub fn class_split(&self, class: &str) -> (u64, u64) {
        let mut accepts = 0;
        let mut others = 0;
        for ((c, verdict), &n) in &self.verdict_mix {
            if c == class {
                if verdict == "accept" {
                    accepts += n;
                } else {
                    others += n;
                }
            }
        }
        (accepts, others)
    }

    /// Every provenance class named in the verdict mix, deduplicated in
    /// sorted order.
    #[must_use]
    pub fn classes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .verdict_mix
            .keys()
            .map(|(class, _)| class.as_str())
            .collect();
        out.dedup();
        out
    }
}

/// Errors from loading or verifying a trend log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrendError {
    /// A line failed to parse (1-based line number and message).
    Parse(usize, String),
    /// A record's sequence number broke the gap-free 0..n order.
    Sequence {
        /// 1-based line number.
        line: usize,
        /// Sequence number found.
        found: u64,
        /// Sequence number expected.
        expected: u64,
    },
    /// A record's chain digest does not match the replayed chain — the
    /// log was edited, truncated in the middle, or reordered.
    Chain {
        /// Sequence number of the offending record.
        seq: u64,
    },
}

impl fmt::Display for TrendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(line, msg) => write!(f, "trend log line {line}: {msg}"),
            Self::Sequence {
                line,
                found,
                expected,
            } => write!(
                f,
                "trend log line {line}: seq {found} where {expected} was expected"
            ),
            Self::Chain { seq } => write!(f, "trend log chain mismatch at seq {seq}"),
        }
    }
}

impl std::error::Error for TrendError {}

/// The verified, in-memory form of a trend log.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendLog {
    records: Vec<TrendRecord>,
    chain: Digest64,
}

impl Default for TrendLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
            chain: Digest64::EMPTY,
        }
    }

    /// Records appended so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    /// True when nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The chain digest over every record — the log's identity.
    #[must_use]
    pub fn root(&self) -> Digest64 {
        self.chain
    }

    /// All records, in append (seq) order.
    #[must_use]
    pub fn records(&self) -> &[TrendRecord] {
        &self.records
    }

    /// Appends one record, returning its assigned sequence number.
    pub fn append(&mut self, record: TrendRecord) -> u64 {
        let seq = self.records.len() as u64;
        self.chain = self.chain.link(record.digest());
        self.records.push(record);
        seq
    }

    /// The canonical serialized log: one framed line per record, in seq
    /// order. Byte-identical for byte-identical append histories.
    #[must_use]
    pub fn contents(&self) -> String {
        let mut out = String::new();
        let mut chain = Digest64::EMPTY;
        for (seq, record) in self.records.iter().enumerate() {
            chain = chain.link(record.digest());
            out.push_str(&framed_line(seq as u64, chain, record));
            out.push('\n');
        }
        out
    }

    /// Parses and verifies a serialized log: every line must parse, seqs
    /// must be gap-free from 0, and every line's chain digest must match
    /// the replayed chain.
    ///
    /// # Errors
    ///
    /// [`TrendError`] naming the first offending line.
    pub fn parse(text: &str) -> Result<Self, TrendError> {
        let mut log = Self::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let (seq, chain, record) =
                parse_line(line).map_err(|msg| TrendError::Parse(i + 1, msg))?;
            if seq != log.len() {
                return Err(TrendError::Sequence {
                    line: i + 1,
                    found: seq,
                    expected: log.len(),
                });
            }
            let expected = log.chain.link(record.digest());
            if chain != expected {
                return Err(TrendError::Chain { seq });
            }
            log.append(record);
        }
        Ok(log)
    }

    /// Loads and verifies the log at `path`; a missing file is an empty
    /// log (the first append creates it).
    ///
    /// # Errors
    ///
    /// I/O errors (other than not-found), or [`TrendError`] wrapped as
    /// `InvalidData` for a corrupt log.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::new()),
            Err(e) => return Err(e),
        };
        Self::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Writes [`TrendLog::contents`] to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.contents())
    }
}

/// Loads, verifies, and extends the log at `path` by one record (creating
/// the file if absent), appending only the new framed line. Returns the
/// assigned sequence number.
///
/// # Errors
///
/// I/O errors, or `InvalidData` when the existing log fails verification
/// — a corrupt log is never extended.
pub fn append_to_log(path: &Path, record: TrendRecord) -> std::io::Result<u64> {
    let mut log = TrendLog::load(path)?;
    let seq = log.append(record);
    let line = framed_line(seq, log.root(), &log.records()[seq as usize]);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")?;
    Ok(seq)
}

/// Frames one record as its log line: `{"seq":N,"chain":"hex",` spliced
/// onto the record's canonical payload.
fn framed_line(seq: u64, chain: Digest64, record: &TrendRecord) -> String {
    let payload = record.canonical_line();
    format!(
        "{{\"seq\":{seq},\"chain\":\"{chain}\",{}",
        &payload[1..] // drop the payload's opening brace
    )
}

// ------------------------------------------------------------ parsing ----

/// A cursor over one canonical log line. The grammar is exactly what
/// [`framed_line`] emits — fixed field order, no escapes, flat maps — so a
/// few hundred bytes of hand-rolled scanning replace a JSON dependency the
/// offline workspace cannot have. The chain digest, not the parser,
/// guards integrity.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Self { rest: line }
    }

    /// Consumes an exact literal.
    fn lit(&mut self, lit: &str) -> Result<(), String> {
        self.rest = self
            .rest
            .strip_prefix(lit)
            .ok_or_else(|| format!("expected {lit:?} at {:?}", truncated(self.rest)))?;
        Ok(())
    }

    /// Consumes up to (not including) `stop`.
    fn until(&mut self, stop: char) -> Result<&'a str, String> {
        let idx = self
            .rest
            .find(stop)
            .ok_or_else(|| format!("missing {stop:?} after {:?}", truncated(self.rest)))?;
        let (head, tail) = self.rest.split_at(idx);
        self.rest = tail;
        Ok(head)
    }

    /// Consumes a decimal u64 (stops at the first non-digit).
    fn u64_val(&mut self) -> Result<u64, String> {
        let digits = self.rest.len()
            - self
                .rest
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .len();
        let (head, tail) = self.rest.split_at(digits);
        self.rest = tail;
        head.parse()
            .map_err(|_| format!("bad number at {:?}", truncated(head)))
    }

    /// Consumes `null` or a decimal u64.
    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        if let Some(tail) = self.rest.strip_prefix("null") {
            self.rest = tail;
            return Ok(None);
        }
        self.u64_val().map(Some)
    }

    /// Consumes a `"quoted"` string (no escapes in this grammar).
    fn string_val(&mut self) -> Result<&'a str, String> {
        self.lit("\"")?;
        let s = self.until('"')?;
        self.lit("\"")?;
        Ok(s)
    }

    /// Consumes a flat `{"key":scalar,...}` object, handing each raw
    /// `(key, value_text)` pair to `put`.
    fn flat_object(
        &mut self,
        mut put: impl FnMut(&'a str, &'a str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.lit("{")?;
        if self.rest.starts_with('}') {
            return self.lit("}");
        }
        loop {
            let key = self.string_val()?;
            self.lit(":")?;
            let end = self
                .rest
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated object at {:?}", truncated(self.rest)))?;
            let (value, tail) = self.rest.split_at(end);
            self.rest = tail;
            put(key, value)?;
            if self.rest.starts_with('}') {
                return self.lit("}");
            }
            self.lit(",")?;
        }
    }
}

fn truncated(s: &str) -> &str {
    &s[..s.len().min(24)]
}

/// Parses one framed log line into `(seq, chain, record)`.
fn parse_line(line: &str) -> Result<(u64, Digest64, TrendRecord), String> {
    let mut c = Cursor::new(line);
    c.lit("{\"seq\":")?;
    let seq = c.u64_val()?;
    c.lit(",\"chain\":")?;
    let chain = Digest64::from_hex(c.string_val()?).ok_or("bad chain digest")?;
    c.lit(",\"kind\":")?;
    let kind = c.string_val()?.to_string();
    c.lit(",\"build\":")?;
    let build = c.string_val()?.to_string();
    c.lit(",\"seed\":")?;
    let seed = c.u64_val()?;
    c.lit(",\"params\":")?;
    let params = c.string_val()?.to_string();
    c.lit(",\"verdict_mix\":")?;
    let mut verdict_mix = BTreeMap::new();
    c.flat_object(|key, value| {
        let (class, verdict) = key
            .split_once('/')
            .ok_or_else(|| format!("verdict_mix key without '/': {key:?}"))?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("bad verdict_mix count {value:?}"))?;
        verdict_mix.insert((class.to_string(), verdict.to_string()), n);
        Ok(())
    })?;
    c.lit(",\"flips\":")?;
    let flips = c.opt_u64()?;
    c.lit(",\"ops\":")?;
    let ops = c.opt_u64()?;
    c.lit(",\"perf\":")?;
    let mut perf = BTreeMap::new();
    c.flat_object(|key, value| {
        let v: f64 = value
            .parse()
            .map_err(|_| format!("bad perf value {value:?}"))?;
        perf.insert(key.to_string(), v);
        Ok(())
    })?;
    c.lit("}")?;
    if !c.rest.is_empty() {
        return Err(format!("trailing bytes: {:?}", truncated(c.rest)));
    }
    Ok((
        seq,
        chain,
        TrendRecord {
            kind,
            build,
            seed,
            params,
            verdict_mix,
            flips,
            ops,
            perf,
        },
    ))
}

// -------------------------------------------------------- drift gates ----

/// Drift-gate knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftOptions {
    /// How many predecessor runs the perf median is taken over.
    pub window: usize,
    /// Warn when the latest `trials/s` falls below `median / perf_ratio`.
    pub perf_ratio: f64,
}

impl Default for DriftOptions {
    fn default() -> Self {
        Self {
            window: 8,
            perf_ratio: 2.0,
        }
    }
}

/// One comparable-run group's latest drift evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCheck {
    /// Campaign kind.
    pub kind: String,
    /// Params digest (hex) of the group.
    pub params: String,
    /// Campaign seed of the group.
    pub seed: u64,
    /// Comparable runs in the group.
    pub runs: u64,
}

/// The result of [`compute_drift`]: hard detection failures, advisory
/// perf warnings, and the groups that were compared.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftReport {
    /// Records in the log.
    pub records: u64,
    /// Comparable `(kind, params, seed)` groups evaluated.
    pub checks: Vec<DriftCheck>,
    /// Detection-drift failures (reject→accept movement, nonzero flips).
    pub failures: Vec<String>,
    /// Perf-drift warnings (advisory only).
    pub warnings: Vec<String>,
}

impl DriftReport {
    /// True when no detection gate failed (warnings do not gate).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Evaluates the drift gates over a verified log: within each
/// `(kind, params, seed)` group, the latest record is compared against
/// its immediate predecessor for detection drift and against the median
/// of the previous [`DriftOptions::window`] runs for perf drift.
#[must_use]
pub fn compute_drift(log: &TrendLog, opts: &DriftOptions) -> DriftReport {
    let mut groups: BTreeMap<(&str, &str, u64), Vec<&TrendRecord>> = BTreeMap::new();
    for record in log.records() {
        groups
            .entry((record.kind.as_str(), record.params.as_str(), record.seed))
            .or_default()
            .push(record);
    }
    let mut report = DriftReport {
        records: log.len(),
        ..DriftReport::default()
    };
    for ((kind, params, seed), runs) in &groups {
        report.checks.push(DriftCheck {
            kind: (*kind).to_string(),
            params: (*params).to_string(),
            seed: *seed,
            runs: runs.len() as u64,
        });
        let latest = runs[runs.len() - 1];
        if let Some(flips) = latest.flips {
            if flips > 0 {
                report.failures.push(format!(
                    "{kind}@{params}: latest run recorded {flips} reject->accept fault flips"
                ));
            }
        }
        if runs.len() < 2 {
            continue;
        }
        let prev = runs[runs.len() - 2];
        for class in latest.classes() {
            let (acc_prev, other_prev) = prev.class_split(class);
            let (acc_cur, other_cur) = latest.class_split(class);
            if acc_cur > acc_prev && other_cur < other_prev {
                report.failures.push(format!(
                    "{kind}@{params}: class {class:?} drifted toward acceptance \
                     (accept {acc_prev}->{acc_cur}, non-accept {other_prev}->{other_cur})"
                ));
            }
        }
        for (name, &current) in &latest.perf {
            let mut history: Vec<f64> = runs[..runs.len() - 1]
                .iter()
                .rev()
                .take(opts.window)
                .filter_map(|r| r.perf.get(name).copied())
                .collect();
            if history.is_empty() {
                continue;
            }
            history.sort_by(f64::total_cmp);
            let median = history[history.len() / 2];
            if median > 0.0 && current < median / opts.perf_ratio {
                report.warnings.push(format!(
                    "{kind}@{params}: {name} at {current:.1} trials/s, \
                     below median {median:.1} / {}",
                    opts.perf_ratio
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, seed: u64, mix: &[(&str, &str, u64)]) -> TrendRecord {
        let mut r = TrendRecord::new(kind, "flashmark-test/0.1.0", seed, Digest64::of(b"params"));
        for &(class, verdict, n) in mix {
            r.verdict_mix
                .insert((class.to_string(), verdict.to_string()), n);
        }
        r
    }

    #[test]
    fn canonical_line_roundtrips_through_the_parser() {
        let mut r = record(
            "service",
            0x5E47,
            &[("genuine", "accept", 10), ("clone", "reject", 4)],
        );
        r.flips = Some(0);
        r.ops = None;
        r.perf.insert("kernel/read_segment".into(), 15598.25);
        let mut log = TrendLog::new();
        log.append(r.clone());
        let parsed = TrendLog::parse(&log.contents()).expect("parse");
        assert_eq!(parsed.records(), &[r]);
        assert_eq!(parsed.root(), log.root());
    }

    #[test]
    fn contents_are_stable_and_chain_replays() {
        let mut log = TrendLog::new();
        log.append(record("suite", 1, &[("genuine", "accept", 5)]));
        log.append(record("suite", 1, &[("genuine", "accept", 5)]));
        let text = log.contents();
        assert_eq!(text, TrendLog::parse(&text).unwrap().contents());
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"seq\":0,\"chain\":\""));
    }

    #[test]
    fn tampered_logs_are_rejected() {
        let mut log = TrendLog::new();
        log.append(record("suite", 1, &[("genuine", "accept", 5)]));
        log.append(record("suite", 1, &[("clone", "reject", 5)]));
        let text = log.contents();

        // Flip one verdict count without re-chaining.
        let edited = text.replace("\"clone/reject\":5", "\"clone/reject\":4");
        assert_ne!(edited, text);
        assert!(matches!(
            TrendLog::parse(&edited),
            Err(TrendError::Chain { seq: 1 })
        ));

        // Drop the first line: the survivor's seq and chain both misfit.
        let truncated = text.lines().nth(1).unwrap();
        assert!(TrendLog::parse(truncated).is_err());

        // Garbage is a parse error with a line number.
        assert!(matches!(
            TrendLog::parse("not json\n"),
            Err(TrendError::Parse(1, _))
        ));
    }

    #[test]
    fn append_to_log_extends_the_file_incrementally() {
        let dir = std::env::temp_dir().join(format!("flashmark_trend_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trend_log.jsonl");
        std::fs::remove_file(&path).ok();

        let seq0 = append_to_log(&path, record("service", 2, &[("genuine", "accept", 3)])).unwrap();
        let seq1 = append_to_log(&path, record("service", 2, &[("genuine", "accept", 3)])).unwrap();
        assert_eq!((seq0, seq1), (0, 1));
        let log = TrendLog::load(&path).unwrap();
        assert_eq!(log.len(), 2);

        // The file bytes equal the canonical serialization.
        let mut expected = TrendLog::new();
        expected.append(record("service", 2, &[("genuine", "accept", 3)]));
        expected.append(record("service", 2, &[("genuine", "accept", 3)]));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), expected.contents());

        // A corrupt file refuses further appends.
        std::fs::write(&path, "broken\n").unwrap();
        assert!(append_to_log(&path, record("service", 2, &[])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_loads_as_empty() {
        let path = std::env::temp_dir().join("flashmark_trend_never_written.jsonl");
        std::fs::remove_file(&path).ok();
        assert!(TrendLog::load(&path).unwrap().is_empty());
    }

    #[test]
    fn identical_consecutive_runs_pass_the_gate() {
        let mut log = TrendLog::new();
        let r = record(
            "service",
            7,
            &[("genuine", "accept", 10), ("clone", "reject", 5)],
        );
        log.append(r.clone());
        log.append(r);
        let report = compute_drift(&log, &DriftOptions::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checks.len(), 1);
        assert_eq!(report.checks[0].runs, 2);
    }

    #[test]
    fn reject_to_accept_movement_fails_the_gate() {
        let mut log = TrendLog::new();
        log.append(record(
            "service",
            7,
            &[("clone", "reject", 5), ("genuine", "accept", 10)],
        ));
        log.append(record(
            "service",
            7,
            &[
                ("clone", "reject", 3),
                ("clone", "accept", 2),
                ("genuine", "accept", 10),
            ],
        ));
        let report = compute_drift(&log, &DriftOptions::default());
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("clone"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn movement_toward_rejection_does_not_fail() {
        let mut log = TrendLog::new();
        log.append(record(
            "service",
            7,
            &[("recycled", "accept", 5), ("recycled", "reject", 1)],
        ));
        // Detection got stricter: accepts down, rejects up. Not a failure.
        log.append(record(
            "service",
            7,
            &[("recycled", "accept", 2), ("recycled", "reject", 4)],
        ));
        assert!(compute_drift(&log, &DriftOptions::default()).passed());
    }

    #[test]
    fn nonzero_flips_fail_even_without_a_predecessor() {
        let mut log = TrendLog::new();
        let mut r = record("fault", 3, &[]);
        r.flips = Some(2);
        log.append(r);
        let report = compute_drift(&log, &DriftOptions::default());
        assert!(!report.passed());
        assert!(report.failures[0].contains("fault flips"));
    }

    #[test]
    fn perf_drift_warns_but_never_fails() {
        let mut log = TrendLog::new();
        for _ in 0..3 {
            let mut r = record("perf", 1, &[]);
            r.perf.insert("kernel/bulk_stress_5k".into(), 16_000.0);
            log.append(r);
        }
        let mut slow = record("perf", 1, &[]);
        slow.perf.insert("kernel/bulk_stress_5k".into(), 1_000.0);
        log.append(slow);
        let report = compute_drift(&log, &DriftOptions::default());
        assert!(report.passed(), "perf drift must not gate");
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("bulk_stress_5k"));
    }

    #[test]
    fn groups_with_different_params_or_seed_never_compare() {
        let mut log = TrendLog::new();
        log.append(record("service", 1, &[("clone", "reject", 5)]));
        // Same kind, different seed: a fresh group, so the "drift" toward
        // acceptance is not comparable and must not fail.
        log.append(record("service", 2, &[("clone", "accept", 5)]));
        let report = compute_drift(&log, &DriftOptions::default());
        assert!(report.passed());
        assert_eq!(report.checks.len(), 2);
    }
}
