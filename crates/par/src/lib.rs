#![forbid(unsafe_code)]
//! Deterministic parallel execution of independent simulation trials.
//!
//! Every quantitative artifact in this repository is a Monte Carlo fan-out
//! over independent simulated chips. [`TrialRunner`] distributes those
//! trials across a scoped worker pool (plain `std::thread` — the workspace
//! is offline, so no external executor) while keeping the output
//! **bit-identical to a serial run**:
//!
//! * each trial's `SplitMix64` seed is a pure function of
//!   `(experiment_seed, trial_index)` — see [`TrialRunner::trial_seed`] —
//!   so no trial ever observes scheduling order through its RNG;
//! * results are merged back in trial-index order, so the returned `Vec`
//!   is independent of which worker ran which trial;
//! * `threads == 1` (or a single trial) takes a plain in-order loop — the
//!   exact legacy serial path, with no pool machinery at all.
//!
//! Raw `std::thread::spawn` is forbidden elsewhere in the workspace by
//! `cargo xtask lint`; all parallelism funnels through this crate so the
//! determinism guarantee holds globally.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use flashmark_physics::rng::mix2;

/// One trial's identity inside a fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Position in `0..n`; results are merged back in this order.
    pub index: usize,
    /// Deterministic seed, `mix2(experiment_seed, index)`. Use it to build
    /// the trial's chip/RNG so the trial is a pure function of its seed.
    pub seed: u64,
}

/// Fans N independent trials across a scoped worker pool.
///
/// # Example
///
/// ```
/// use flashmark_par::TrialRunner;
/// let serial = TrialRunner::with_threads(0xF1A5, 1);
/// let parallel = TrialRunner::with_threads(0xF1A5, 8);
/// let f = |t: flashmark_par::Trial| t.seed.wrapping_mul(t.index as u64 + 1);
/// assert_eq!(serial.run(100, f), parallel.run(100, f));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRunner {
    experiment_seed: u64,
    threads: usize,
}

impl TrialRunner {
    /// Creates a runner using [`default_threads`] workers.
    #[must_use]
    pub fn new(experiment_seed: u64) -> Self {
        Self::with_threads(experiment_seed, default_threads())
    }

    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    /// `threads == 1` is the exact legacy serial path.
    #[must_use]
    pub fn with_threads(experiment_seed: u64, threads: usize) -> Self {
        Self {
            experiment_seed,
            threads: threads.max(1),
        }
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The experiment-level seed all trial seeds derive from.
    #[must_use]
    pub fn experiment_seed(&self) -> u64 {
        self.experiment_seed
    }

    /// The seed of trial `index`: `mix2(experiment_seed, index)`. A pure
    /// function of its inputs — independent of thread count and schedule.
    #[must_use]
    pub fn trial_seed(&self, index: usize) -> u64 {
        mix2(self.experiment_seed, index as u64)
    }

    /// The full [`Trial`] descriptor for `index`.
    #[must_use]
    pub fn trial(&self, index: usize) -> Trial {
        Trial {
            index,
            seed: self.trial_seed(index),
        }
    }

    /// Runs `n` trials of `f` and returns their results in trial order.
    ///
    /// With one worker (or ≤ 1 trials) this is a plain serial loop.
    /// Otherwise workers pull trial indices from a shared counter and the
    /// per-trial results are merged back by index, so the output is
    /// bit-identical to the serial loop as long as `f` is a pure function
    /// of its [`Trial`].
    ///
    /// # Panics
    ///
    /// A panic inside `f` is propagated to the caller (after the remaining
    /// workers finish).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(|i| f(self.trial(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    let runner = *self;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            produced.push((index, f(runner.trial(index))));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (index, value) in produced {
                            slots[index] = Some(value);
                        }
                    }
                    Err(payload) => resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every trial index was claimed exactly once"))
            .collect()
    }

    /// Runs `n` trials of `f` and feeds each result, **in trial order**, to
    /// the single-threaded `observe` hook as `(trial_index, result)`.
    ///
    /// This is the instrumented-runner hook: campaign layers (the obs
    /// aggregator, service telemetry) fold per-trial artifacts into
    /// order-sensitive accumulators without re-implementing the merge — the
    /// hook always sees trial 0, 1, 2, … regardless of which worker ran
    /// which trial, so any fold it performs is deterministic at every
    /// `--threads` count.
    ///
    /// # Panics
    ///
    /// A panic inside `f` is propagated to the caller (after the remaining
    /// workers finish), exactly as in [`TrialRunner::run`].
    pub fn run_observed<T, F, O>(&self, n: usize, f: F, mut observe: O)
    where
        T: Send,
        F: Fn(Trial) -> T + Sync,
        O: FnMut(usize, T),
    {
        for (index, value) in self.run(n, f).into_iter().enumerate() {
            observe(index, value);
        }
    }
}

/// The machine's available parallelism (≥ 1).
#[must_use]
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Error from parsing a `--threads` command-line flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsArgError(String);

impl fmt::Display for ThreadsArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid --threads flag: {}", self.0)
    }
}

impl std::error::Error for ThreadsArgError {}

/// Extracts `--threads N` / `--threads=N` from an argument list.
///
/// Returns `Ok(None)` when the flag is absent; other arguments are ignored
/// so bins can layer their own flags on top.
///
/// # Errors
///
/// The flag is present but has no value, a non-numeric value, or `0`.
pub fn parse_threads<I, S>(args: I) -> Result<Option<usize>, ThreadsArgError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        let value = if arg == "--threads" {
            match iter.next() {
                Some(v) => v.as_ref().to_owned(),
                None => return Err(ThreadsArgError("missing value after --threads".into())),
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_owned()
        } else {
            continue;
        };
        return match value.parse::<usize>() {
            Ok(0) => Err(ThreadsArgError("thread count must be >= 1".into())),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ThreadsArgError(format!("not a number: {value:?}"))),
        };
    }
    Ok(None)
}

/// Worker count for a bin: `--threads` from the process arguments, falling
/// back to [`default_threads`].
///
/// # Errors
///
/// Malformed `--threads` flag (see [`parse_threads`]).
pub fn threads_from_env_args() -> Result<usize, ThreadsArgError> {
    Ok(parse_threads(std::env::args().skip(1))?.unwrap_or_else(default_threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn trial_seed_is_pure_function_of_seed_and_index() {
        let a = TrialRunner::with_threads(0xABCD, 1);
        let b = TrialRunner::with_threads(0xABCD, 16);
        for i in 0..100 {
            assert_eq!(a.trial_seed(i), b.trial_seed(i));
            assert_eq!(a.trial_seed(i), mix2(0xABCD, i as u64));
        }
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let runner = TrialRunner::new(7);
        let seeds: HashSet<u64> = (0..1_000).map(|i| runner.trial_seed(i)).collect();
        assert_eq!(seeds.len(), 1_000);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // A trial that feeds its seed through floating-point work, so any
        // scheduling leak would show up in the bits.
        let f = |t: Trial| {
            let mut rng = flashmark_physics::rng::SplitMix64::new(t.seed);
            (0..50).map(|_| rng.normal()).sum::<f64>().to_bits()
        };
        let serial = TrialRunner::with_threads(0x5EED, 1).run(64, f);
        for threads in [2, 3, 8, 32] {
            let parallel = TrialRunner::with_threads(0x5EED, threads).run(64, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let out = TrialRunner::with_threads(1, 8).run(100, |t| t.index);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let out = TrialRunner::with_threads(9, 4).run(257, |t| {
            count.fetch_add(1, Ordering::Relaxed);
            t.index
        });
        assert_eq!(out.len(), 257);
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn observed_runs_feed_the_hook_in_trial_order() {
        for threads in [1, 4] {
            let mut seen = Vec::new();
            TrialRunner::with_threads(0xB0B, threads).run_observed(
                37,
                |t| t.seed,
                |index, seed| seen.push((index, seed)),
            );
            let expected: Vec<(usize, u64)> = (0..37).map(|i| (i, mix2(0xB0B, i as u64))).collect();
            assert_eq!(seen, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(TrialRunner::with_threads(1, 8)
            .run(0, |t| t.index)
            .is_empty());
        assert!(TrialRunner::with_threads(1, 1)
            .run(0, |t| t.index)
            .is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(TrialRunner::with_threads(1, 0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panic_propagates() {
        TrialRunner::with_threads(1, 4).run(8, |t| {
            assert!(t.index != 3, "trial 3 exploded");
            t.index
        });
    }

    #[test]
    fn parse_threads_accepts_both_forms() {
        assert_eq!(parse_threads(["--threads", "4"]).unwrap(), Some(4));
        assert_eq!(parse_threads(["--threads=9"]).unwrap(), Some(9));
        assert_eq!(parse_threads(["--layout=interleaved"]).unwrap(), None);
        assert_eq!(
            parse_threads(["--foo", "--threads=2", "bar"]).unwrap(),
            Some(2)
        );
    }

    #[test]
    fn parse_threads_rejects_garbage() {
        assert!(parse_threads(["--threads"]).is_err());
        assert!(parse_threads(["--threads", "zero"]).is_err());
        assert!(parse_threads(["--threads=0"]).is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
