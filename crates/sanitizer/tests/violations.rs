//! Integration tests of the flash-protocol sanitizer: every invariant has
//! an injected-failure test asserting the violation kind and backtrace, and
//! a clean-path test asserting the legal sequence passes unflagged.

use flashmark_nor::interface::FlashInterfaceExt;
use flashmark_nor::{
    FlashController, FlashEvent, FlashGeometry, FlashInterface, FlashTimings, NorError,
    SegmentAddr, WordAddr,
};
use flashmark_physics::{Micros, PhysicsParams, Seconds};
use flashmark_sanitizer::{Policy, SanitizedFlash, SegState, Violation, ViolationKind};

fn controller(seed: u64) -> FlashController {
    FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(4),
        FlashTimings::msp430(),
        seed,
    )
}

fn sanitized(seed: u64) -> SanitizedFlash<FlashController> {
    SanitizedFlash::wrap_controller(controller(seed))
}

/// Every violation must carry a non-empty backtrace once any event has been
/// observed, and name the op it was detected in.
fn assert_backtraced(v: &Violation, op: &str) {
    assert_eq!(v.op, op);
    assert!(!v.backtrace.is_empty(), "violation backtrace is empty: {v}");
}

// --- invariant 1: overprogram ------------------------------------------------

#[test]
fn overprogram_is_flagged_with_backtrace() {
    let mut f = sanitized(1);
    let seg = SegmentAddr::new(0);
    let w = WordAddr::new(3);
    f.erase_segment(seg).unwrap();
    f.program_word(w, 0x1234).unwrap();
    f.program_word(w, 0x0F0F).unwrap(); // second program without erase

    let violations = f.violations();
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one violation: {violations:?}"
    );
    let v = &violations[0];
    assert_eq!(v.kind, ViolationKind::Overprogram { word: w });
    assert_backtraced(v, "program_word");
    // The backtrace shows the history that makes it an overprogram: the
    // erase and the first program of the same word.
    assert!(v
        .backtrace
        .iter()
        .any(|(_, e)| matches!(e, FlashEvent::EraseSegment { seg: s } if *s == seg)));
    assert!(v
        .backtrace
        .iter()
        .any(|(_, e)| matches!(e, FlashEvent::ProgramWord { word } if *word == w)));
}

#[test]
fn program_after_erase_is_clean() {
    let mut f = sanitized(2);
    let seg = SegmentAddr::new(0);
    let w = WordAddr::new(3);
    f.erase_segment(seg).unwrap();
    f.program_word(w, 0x1234).unwrap();
    f.erase_segment(seg).unwrap();
    f.program_word(w, 0x0F0F).unwrap();
    f.assert_clean();
}

// --- invariant 2: cumulative program time (tCPT) -----------------------------

/// Timings whose shadow `tCPT` budget fits a single word program, so a
/// second program to the same row overruns it (the wrapped controller keeps
/// the permissive datasheet default and still accepts the operation).
fn tight_tcpt() -> FlashTimings {
    FlashTimings {
        cumulative_program_limit: Micros::new(100.0),
        ..FlashTimings::msp430()
    }
}

#[test]
fn tcpt_overrun_is_flagged_once_with_backtrace() {
    let mut f = SanitizedFlash::new(controller(3)).with_timings(tight_tcpt());
    let seg = SegmentAddr::new(0);
    f.erase_segment(seg).unwrap();
    // Three programs to distinct words of row 0, 75 us each against a
    // 100 us budget: the second crosses the limit, the third is past it.
    for i in 0..3 {
        f.program_word(WordAddr::new(i), 0).unwrap();
    }

    let violations = f.violations();
    assert_eq!(
        violations.len(),
        1,
        "limit crossing must be reported exactly once"
    );
    let v = &violations[0];
    match v.kind {
        ViolationKind::CumulativeProgramTime {
            seg: s,
            row,
            charged,
            limit,
        } => {
            assert_eq!(s, seg);
            assert_eq!(row, 0);
            assert!(
                charged > limit,
                "charged {charged} must exceed limit {limit}"
            );
        }
        ref other => panic!("expected CumulativeProgramTime, got {other:?}"),
    }
    assert_backtraced(v, "program_word");
}

#[test]
fn tcpt_budget_resets_on_erase() {
    let mut f = SanitizedFlash::new(controller(4)).with_timings(tight_tcpt());
    let seg = SegmentAddr::new(0);
    for i in 0..3 {
        f.erase_segment(seg).unwrap();
        f.program_word(WordAddr::new(i), 0).unwrap();
    }
    f.assert_clean();
}

// --- invariant 3: lock discipline --------------------------------------------

#[test]
fn operation_while_locked_is_flagged() {
    let mut f = sanitized(5);
    let seg = SegmentAddr::new(0);
    f.erase_segment(seg).unwrap(); // seed the event ring
    f.inner_mut().lock();
    let err = f.program_word(WordAddr::new(0), 0).unwrap_err();
    assert_eq!(err, NorError::Locked);

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, ViolationKind::LockedOperation);
    assert_backtraced(&violations[0], "program_word");
}

#[test]
fn operation_after_unlock_is_clean() {
    let mut f = sanitized(6);
    f.inner_mut().lock();
    f.inner_mut().unlock();
    f.erase_segment(SegmentAddr::new(0)).unwrap();
    f.program_word(WordAddr::new(0), 0xBEEF).unwrap();
    f.assert_clean();
}

// --- invariant 4: address range ----------------------------------------------

#[test]
fn segment_out_of_range_is_flagged() {
    let mut f = sanitized(7);
    let total = f.geometry().total_segments();
    f.erase_segment(SegmentAddr::new(0)).unwrap(); // seed the event ring
    let bogus = SegmentAddr::new(total + 3);
    assert!(f.erase_segment(bogus).is_err());

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].kind,
        ViolationKind::SegmentOutOfRange {
            seg: bogus,
            total_segments: total
        }
    );
    assert_backtraced(&violations[0], "erase_segment");
}

#[test]
fn word_out_of_range_is_flagged() {
    let mut f = sanitized(8);
    let total = f.geometry().total_words();
    f.erase_segment(SegmentAddr::new(0)).unwrap();
    let bogus = WordAddr::new(u32::try_from(total).unwrap() + 17);
    assert!(f.program_word(bogus, 0).is_err());

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].kind,
        ViolationKind::WordOutOfRange {
            word: bogus,
            total_words: total
        }
    );
    assert_backtraced(&violations[0], "program_word");
}

#[test]
fn last_valid_addresses_are_clean() {
    let mut f = sanitized(9);
    let geom = f.geometry();
    let last_seg = SegmentAddr::new(geom.total_segments() - 1);
    let last_word = WordAddr::new(u32::try_from(geom.total_words()).unwrap() - 1);
    f.erase_segment(last_seg).unwrap();
    f.program_word(last_word, 0x00FF).unwrap();
    f.read_word(last_word).unwrap();
    f.assert_clean();
}

// --- invariant 5: partial-erase ordering -------------------------------------

#[test]
fn partial_erase_without_all_zero_is_flagged() {
    let mut f = sanitized(10);
    let seg = SegmentAddr::new(1);
    f.erase_segment(seg).unwrap(); // erased, but NOT block-programmed all-zero
    f.partial_erase(seg, Micros::new(20.0)).unwrap();

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].kind,
        ViolationKind::PartialEraseOrder {
            seg,
            found: SegState::Erased
        }
    );
    assert_backtraced(&violations[0], "partial_erase");
    assert!(violations[0]
        .backtrace
        .iter()
        .any(|(_, e)| matches!(e, FlashEvent::EraseSegment { seg: s } if *s == seg)));
}

#[test]
fn partial_erase_after_program_all_zero_is_clean() {
    let mut f = sanitized(11);
    let seg = SegmentAddr::new(1);
    f.program_all_zero(seg).unwrap();
    assert_eq!(f.segment_state(seg), SegState::AllZero);
    f.partial_erase(seg, Micros::new(20.0)).unwrap();
    assert_eq!(f.segment_state(seg), SegState::PartialErased);
    f.assert_clean();
}

#[test]
fn second_consecutive_partial_erase_is_flagged() {
    // Fig. 8 allows exactly one partial erase per all-zero program.
    let mut f = sanitized(12);
    let seg = SegmentAddr::new(1);
    f.program_all_zero(seg).unwrap();
    f.partial_erase(seg, Micros::new(20.0)).unwrap();
    f.partial_erase(seg, Micros::new(20.0)).unwrap();

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].kind,
        ViolationKind::PartialEraseOrder {
            seg,
            found: SegState::PartialErased
        }
    );
}

// --- invariant 6: wear monotonicity ------------------------------------------

/// A backend whose reported wear can be rewound, to inject the one fault a
/// real [`FlashController`] cannot produce.
struct RewindableFlash {
    inner: FlashController,
    /// Offset subtracted from the real wear reading; raising it mid-run
    /// makes observed wear go backwards.
    rewind: f64,
}

impl FlashInterface for RewindableFlash {
    fn geometry(&self) -> FlashGeometry {
        self.inner.geometry()
    }
    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.inner.read_word(word)
    }
    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        self.inner.program_word(word, value)
    }
    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        self.inner.program_block(seg, values)
    }
    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.inner.erase_segment(seg)
    }
    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        self.inner.partial_erase(seg, t_pe)
    }
    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.inner.erase_until_clean(seg)
    }
    fn elapsed(&self) -> Seconds {
        self.inner.elapsed()
    }
}

#[test]
fn wear_decrease_is_flagged() {
    let backend = RewindableFlash {
        inner: controller(13),
        rewind: 0.0,
    };
    let mut f = SanitizedFlash::new(backend)
        .with_wear_probe(|b, seg| Some(b.inner.wear_stats(seg).mean_cycles - b.rewind));
    let seg = SegmentAddr::new(0);
    f.erase_segment(seg).unwrap();
    f.erase_segment(seg).unwrap();
    f.inner_mut().rewind = 5.0; // rewind the observable wear counter
    f.erase_segment(seg).unwrap();

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    match violations[0].kind {
        ViolationKind::WearDecrease {
            seg: s,
            previous,
            observed,
        } => {
            assert_eq!(s, seg);
            assert!(observed < previous, "{observed} must be below {previous}");
        }
        ref other => panic!("expected WearDecrease, got {other:?}"),
    }
    assert_backtraced(&violations[0], "erase_segment");
}

#[test]
fn monotone_wear_is_clean() {
    let mut f = sanitized(14); // wrap_controller installs the wear probe
    let seg = SegmentAddr::new(0);
    for _ in 0..4 {
        f.erase_segment(seg).unwrap();
        f.program_word(WordAddr::new(0), 0).unwrap();
    }
    f.assert_clean();
}

// --- backtrace configuration and policy --------------------------------------

#[test]
fn backtrace_capacity_bounds_the_window() {
    let mut f = SanitizedFlash::new(controller(15)).backtrace_capacity(2);
    let seg = SegmentAddr::new(0);
    for _ in 0..5 {
        f.erase_segment(seg).unwrap();
    }
    f.partial_erase(seg, Micros::new(10.0)).unwrap(); // injected ordering fault

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    // Capped at 2 trailing events, but never empty.
    assert_eq!(violations[0].backtrace.len(), 2);
}

#[test]
fn record_reads_puts_reads_in_the_backtrace() {
    let mut f = SanitizedFlash::new(controller(16)).record_reads(true);
    let seg = SegmentAddr::new(0);
    let w = WordAddr::new(7);
    f.erase_segment(seg).unwrap();
    f.read_word(w).unwrap();
    f.program_word(w, 0).unwrap();
    f.program_word(w, 0).unwrap(); // injected overprogram

    let violations = f.violations();
    assert_eq!(violations.len(), 1);
    assert!(violations[0]
        .backtrace
        .iter()
        .any(|(_, e)| matches!(e, FlashEvent::ReadWord { word } if *word == w)));
}

#[test]
fn wrap_controller_syncs_the_inner_trace() {
    let mut f = sanitized(17);
    let seg = SegmentAddr::new(0);
    f.erase_segment(seg).unwrap();
    f.program_word(WordAddr::new(0), 0).unwrap();
    // The controller-side trace mirrors the sanitizer's event ring, so
    // post-mortem debugging has a backtrace on both sides.
    assert!(!f.events().is_empty());
    assert!(!f.inner_mut().trace_mut().events().is_empty());
}

#[test]
#[should_panic(expected = "flash-protocol violation")]
fn panic_policy_aborts_on_first_violation() {
    let mut f = SanitizedFlash::new(controller(18)).with_policy(Policy::Panic);
    let w = WordAddr::new(0);
    f.erase_segment(SegmentAddr::new(0)).unwrap();
    f.program_word(w, 0).unwrap();
    f.program_word(w, 0).unwrap(); // overprogram -> panic
}
