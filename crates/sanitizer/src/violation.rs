//! Structured violation reports.

use core::fmt;

use flashmark_nor::{FlashEvent, SegmentAddr, WordAddr};
use flashmark_physics::{Micros, Seconds};

/// What the sanitizer does when it detects a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Panic immediately with the violation report. Use in tests where any
    /// protocol violation is a bug.
    Panic,
    /// Record the violation silently; inspect via
    /// [`SanitizedFlash::violations`](crate::SanitizedFlash::violations).
    #[default]
    Collect,
    /// Record the violation and also emit it eagerly (as an observability
    /// event) as it happens. Library code never prints; attach an obs
    /// collector to see violations live.
    Log,
}

/// The sanitizer's shadow model of one segment's logical state.
///
/// Driven by the operations the sanitizer observes; used to check the
/// partial-erase ordering precondition of the paper's `ExtractFlashmark`
/// (Fig. 8): a partial erase only has defined meaning on a segment that was
/// just block-programmed all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegState {
    /// No operation observed yet since wrapping; contents unknown.
    #[default]
    Unknown,
    /// Fully erased (all cells read 1).
    Erased,
    /// Block-programmed with the all-zero pattern — the only valid state to
    /// issue a partial erase from.
    AllZero,
    /// Programmed with some non-all-zero data.
    Programmed,
    /// A partial erase left cells mid-transition (undefined logical
    /// values until the next full erase).
    PartialErased,
}

impl fmt::Display for SegState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Unknown => "unknown",
            Self::Erased => "erased",
            Self::AllZero => "block-programmed all-zero",
            Self::Programmed => "programmed",
            Self::PartialErased => "partially erased",
        };
        f.write_str(s)
    }
}

/// One detected flash-protocol invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A word was programmed a second time without an intervening erase.
    ///
    /// NOR programming can only move bits 1 → 0; re-programming an already
    /// programmed word silently ANDs data on real parts and accumulates
    /// undeclared stress.
    Overprogram {
        /// The word programmed twice.
        word: WordAddr,
    },
    /// The cumulative program time budget (`tCPT`) of a 128-byte row was
    /// exceeded between erases.
    CumulativeProgramTime {
        /// Segment containing the overheated row.
        seg: SegmentAddr,
        /// Row index within the segment (row = word offset / 64).
        row: u32,
        /// Program time charged to the row since its last erase.
        charged: Micros,
        /// The datasheet budget.
        limit: Micros,
    },
    /// An operation was attempted while the controller was locked.
    LockedOperation,
    /// A segment address beyond the device geometry was used.
    SegmentOutOfRange {
        /// The offending address.
        seg: SegmentAddr,
        /// Total segments on the device.
        total_segments: u32,
    },
    /// A word address beyond the device geometry was used.
    WordOutOfRange {
        /// The offending address.
        word: WordAddr,
        /// Total words on the device.
        total_words: u64,
    },
    /// A partial erase was issued on a segment that was not just
    /// block-programmed all-zero (the `ExtractFlashmark` precondition).
    PartialEraseOrder {
        /// Target segment.
        seg: SegmentAddr,
        /// The shadow state the segment was actually in.
        found: SegState,
    },
    /// A wear counter decreased — wear is physically monotone, so a
    /// decrease means the backend lost or rewound state.
    WearDecrease {
        /// Segment whose wear went backwards.
        seg: SegmentAddr,
        /// Mean wear cycles previously observed.
        previous: f64,
        /// Mean wear cycles observed now.
        observed: f64,
    },
}

impl ViolationKind {
    /// Stable kind label (also the obs event payload).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Overprogram { .. } => "overprogram",
            Self::CumulativeProgramTime { .. } => "cumulative_program_time",
            Self::LockedOperation => "locked_operation",
            Self::SegmentOutOfRange { .. } => "segment_out_of_range",
            Self::WordOutOfRange { .. } => "word_out_of_range",
            Self::PartialEraseOrder { .. } => "partial_erase_order",
            Self::WearDecrease { .. } => "wear_decrease",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overprogram { word } => {
                write!(f, "overprogram: {word} programmed twice without an intervening erase")
            }
            Self::CumulativeProgramTime { seg, row, charged, limit } => write!(
                f,
                "cumulative program time exceeded on {seg} row {row}: {charged} charged, limit {limit}"
            ),
            Self::LockedOperation => write!(f, "operation attempted while the controller is locked"),
            Self::SegmentOutOfRange { seg, total_segments } => {
                write!(f, "{seg} out of range (device has {total_segments} segments)")
            }
            Self::WordOutOfRange { word, total_words } => {
                write!(f, "{word} out of range (device has {total_words} words)")
            }
            Self::PartialEraseOrder { seg, found } => write!(
                f,
                "partial erase of {seg} requires a block-programmed all-zero segment, found: {found}"
            ),
            Self::WearDecrease { seg, previous, observed } => write!(
                f,
                "wear decreased on {seg}: previously {previous:.3} mean cycles, now {observed:.3}"
            ),
        }
    }
}

/// A violation report: what rule was broken, during which operation, when,
/// and the trailing window of flash events that led up to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The broken invariant.
    pub kind: ViolationKind,
    /// Name of the [`FlashInterface`](flashmark_nor::FlashInterface) method
    /// during which the violation was detected.
    pub op: &'static str,
    /// Simulated time at detection.
    pub at: Seconds,
    /// The last events observed before the violation, oldest first — a
    /// protocol-level "backtrace".
    pub backtrace: Vec<(Seconds, FlashEvent)>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (in {} at {}; {} events of history)",
            self.kind,
            self.op,
            self.at,
            self.backtrace.len()
        )?;
        for (at, ev) in &self.backtrace {
            write!(f, "\n    {at}  {ev:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Violation {
            kind: ViolationKind::Overprogram {
                word: WordAddr::new(5),
            },
            op: "program_word",
            at: Seconds::new(1.5),
            backtrace: vec![(
                Seconds::new(1.0),
                FlashEvent::EraseSegment {
                    seg: SegmentAddr::new(0),
                },
            )],
        };
        let s = v.to_string();
        assert!(s.contains("overprogram"));
        assert!(s.contains("word#5"));
        assert!(s.contains("program_word"));
        assert!(s.contains("EraseSegment"));
    }

    #[test]
    fn seg_state_display() {
        assert_eq!(SegState::AllZero.to_string(), "block-programmed all-zero");
        assert_eq!(SegState::default(), SegState::Unknown);
    }
}
