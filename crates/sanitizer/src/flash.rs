//! The [`SanitizedFlash`] wrapper.

use std::collections::VecDeque;

use flashmark_nor::{
    BulkStress, FlashController, FlashEvent, FlashGeometry, FlashInterface, FlashTimings,
    ImprintTiming, NorError, PartialProgram, SegmentAddr, WordAddr,
};
use flashmark_physics::{Micros, Seconds};

use crate::violation::{Policy, SegState, Violation, ViolationKind};

/// Words per 128-byte `tCPT` row (the datasheet's cumulative-program-time
/// accounting granule), matching the controller's accounting.
const WORDS_PER_ROW: usize = 64;

/// Cap on retained violations; pathological loops would otherwise grow the
/// report without bound. Excess violations are counted, not stored.
const MAX_VIOLATIONS: usize = 1024;

/// Default number of trailing events kept for violation backtraces.
const DEFAULT_BACKTRACE_CAPACITY: usize = 64;

/// Shadow bookkeeping for one segment.
#[derive(Debug, Clone)]
struct SegShadow {
    state: SegState,
    /// Per-word "programmed since the last erase" flags.
    programmed: Vec<bool>,
    /// Per-row cumulative program time since the last erase.
    row_time: Vec<Micros>,
}

impl SegShadow {
    fn new(words: usize) -> Self {
        let rows = words.div_ceil(WORDS_PER_ROW).max(1);
        Self {
            state: SegState::Unknown,
            programmed: vec![false; words],
            row_time: vec![Micros::new(0.0); rows],
        }
    }

    fn reset_erased(&mut self) {
        self.state = SegState::Erased;
        self.programmed.iter_mut().for_each(|p| *p = false);
        self.row_time.iter_mut().for_each(|t| *t = Micros::new(0.0));
    }
}

/// A probe reading a segment's mean wear from the wrapped backend, used for
/// the wear-monotonicity check. Installed automatically by
/// [`SanitizedFlash::wrap_controller`]; for other backends install one with
/// [`SanitizedFlash::with_wear_probe`].
pub type WearProbe<I> = fn(&mut I, SegmentAddr) -> Option<f64>;

/// A [`FlashInterface`] wrapper that shadows the flash protocol state and
/// checks every operation against the invariants real NOR parts impose:
///
/// 1. **Overprogram** — no word is programmed twice without an intervening
///    erase.
/// 2. **`tCPT`** — cumulative program time per 128-byte row stays within the
///    datasheet budget between erases.
/// 3. **Lock discipline** — no operation is attempted while the controller
///    is locked.
/// 4. **Address range** — segment and word addresses stay within the device
///    geometry.
/// 5. **Partial-erase ordering** — a partial erase is only issued on a
///    segment that was just block-programmed all-zero (the `ExtractFlashmark`
///    precondition, Fig. 8).
/// 6. **Wear monotonicity** — observed wear counters never decrease (needs a
///    wear probe; see [`WearProbe`]).
///
/// Violations never alter behavior: the operation is always forwarded to the
/// wrapped flash and its result returned unchanged, so a sanitized run
/// computes exactly what an unsanitized one would. What the sanitizer adds is
/// the [`Violation`] reports, each carrying a bounded backtrace of the
/// preceding flash events.
#[derive(Debug, Clone)]
pub struct SanitizedFlash<I> {
    inner: I,
    geom: FlashGeometry,
    timings: FlashTimings,
    policy: Policy,
    shadows: Vec<SegShadow>,
    ring: VecDeque<(Seconds, FlashEvent)>,
    ring_capacity: usize,
    record_reads: bool,
    violations: Vec<Violation>,
    violations_dropped: u64,
    wear_probe: Option<WearProbe<I>>,
    wear_seen: Vec<Option<f64>>,
}

impl<I: FlashInterface> SanitizedFlash<I> {
    /// Wraps a flash interface with default settings: MSP430 `tCPT`
    /// timings, [`Policy::Collect`], a 64-event backtrace, reads not
    /// recorded, and no wear probe.
    pub fn new(inner: I) -> Self {
        let geom = inner.geometry();
        let words = geom.words_per_segment();
        let segs = geom.total_segments() as usize;
        Self {
            inner,
            geom,
            timings: FlashTimings::msp430(),
            policy: Policy::default(),
            shadows: (0..segs).map(|_| SegShadow::new(words)).collect(),
            ring: VecDeque::with_capacity(DEFAULT_BACKTRACE_CAPACITY.min(1024)),
            ring_capacity: DEFAULT_BACKTRACE_CAPACITY,
            record_reads: false,
            violations: Vec::new(),
            violations_dropped: 0,
            wear_probe: None,
            wear_seen: vec![None; segs],
        }
    }

    /// Uses `timings` for the shadow `tCPT` accounting (defaults to
    /// [`FlashTimings::msp430`]).
    #[must_use]
    pub fn with_timings(mut self, timings: FlashTimings) -> Self {
        self.timings = timings;
        self
    }

    /// Sets the violation [`Policy`].
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how many trailing events each violation backtrace keeps.
    ///
    /// The sanitizer keeps its own always-on event ring, independent of any
    /// [`Trace`](flashmark_nor::Trace) inside the backend, so backtraces are
    /// populated even when backend tracing is off. On a wrapped
    /// [`FlashController`], call
    /// [`sync_inner_trace`](SanitizedFlash::sync_inner_trace) afterwards to
    /// push the same capacity into the controller's trace.
    #[must_use]
    pub fn backtrace_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
        self
    }

    /// Also records individual reads in backtraces (noisy; off by default).
    #[must_use]
    pub fn record_reads(mut self, on: bool) -> Self {
        self.record_reads = on;
        self
    }

    /// Installs a wear probe enabling the wear-monotonicity check.
    #[must_use]
    pub fn with_wear_probe(mut self, probe: WearProbe<I>) -> Self {
        self.wear_probe = Some(probe);
        self
    }

    /// The wrapped flash.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Mutable access to the wrapped flash.
    ///
    /// Operations issued through this reference bypass the sanitizer: the
    /// shadow state is not updated, so later checks may report stale-state
    /// violations. Prefer going through the [`FlashInterface`] impl.
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }

    /// Unwraps, discarding the shadow state and any collected violations.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// Violations collected so far (empty under [`Policy::Panic`], which
    /// never returns from the first one).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drains and returns the collected violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Violations discarded after the report filled up ([`MAX_VIOLATIONS`]
    /// retained).
    pub fn violations_dropped(&self) -> u64 {
        self.violations_dropped
    }

    /// Whether no violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Panics with a full report if any violation was collected.
    ///
    /// # Panics
    ///
    /// If the run was not clean.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "flash-protocol violations detected ({} collected, {} dropped):\n{}",
            self.violations.len(),
            self.violations_dropped,
            self.violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The sanitizer's own trailing event window (what backtraces snapshot).
    pub fn events(&self) -> Vec<(Seconds, FlashEvent)> {
        self.ring.iter().copied().collect()
    }

    /// The shadow protocol state of a segment ([`SegState::Unknown`] if out
    /// of range).
    pub fn segment_state(&self, seg: SegmentAddr) -> SegState {
        self.shadows
            .get(seg.index() as usize)
            .map_or(SegState::Unknown, |s| s.state)
    }

    fn push_event(&mut self, event: FlashEvent) {
        if self.ring_capacity == 0 {
            return;
        }
        if self.ring.len() >= self.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((self.inner.elapsed(), event));
    }

    fn report(&mut self, op: &'static str, kind: ViolationKind) {
        // Violations are re-emitted as obs events under every policy, so an
        // instrumented trial sees them even when the local log is the sink.
        flashmark_obs::emit(flashmark_obs::ObsEvent::SanitizerViolation {
            kind: kind.name(),
            op,
        });
        let violation = Violation {
            kind,
            op,
            at: self.inner.elapsed(),
            backtrace: self.ring.iter().copied().collect(),
        };
        match self.policy {
            Policy::Panic => panic!("flash-protocol violation: {violation}"),
            Policy::Log | Policy::Collect => self.collect(violation),
        }
    }

    fn collect(&mut self, violation: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(violation);
        } else {
            self.violations_dropped += 1;
        }
    }

    /// Checks a segment address, reporting if out of range. Returns whether
    /// the address is usable for shadow bookkeeping.
    fn check_seg(&mut self, op: &'static str, seg: SegmentAddr) -> bool {
        let total = self.geom.total_segments();
        if seg.index() >= total {
            self.report(
                op,
                ViolationKind::SegmentOutOfRange {
                    seg,
                    total_segments: total,
                },
            );
            return false;
        }
        true
    }

    /// Checks a word address, reporting if out of range.
    fn check_word(&mut self, op: &'static str, word: WordAddr) -> bool {
        let total = self.geom.total_words();
        if u64::from(word.index()) >= total {
            self.report(
                op,
                ViolationKind::WordOutOfRange {
                    word,
                    total_words: total,
                },
            );
            return false;
        }
        true
    }

    /// Flags `NorError::Locked` results as lock-discipline violations.
    fn note_error(&mut self, op: &'static str, err: &NorError) {
        if matches!(err, NorError::Locked) {
            self.report(op, ViolationKind::LockedOperation);
        }
    }

    /// Charges `dt` of program time to one row's shadow `tCPT` budget,
    /// reporting on overflow. Mirrors the controller's accounting but keeps
    /// charging past the limit so every over-budget program is flagged.
    fn charge_row(&mut self, op: &'static str, seg: SegmentAddr, row: usize, dt: Micros) {
        let limit = self.timings.cumulative_program_limit;
        if limit.get() <= 0.0 {
            return;
        }
        let Some(shadow) = self.shadows.get_mut(seg.index() as usize) else {
            return;
        };
        let Some(slot) = shadow.row_time.get_mut(row) else {
            return;
        };
        let was_within = slot.get() <= limit.get();
        *slot += dt;
        let charged = *slot;
        if charged.get() > limit.get() && was_within {
            self.report(
                op,
                ViolationKind::CumulativeProgramTime {
                    seg,
                    row: row as u32,
                    charged,
                    limit,
                },
            );
        }
    }

    /// Re-reads the wear probe for `seg` and reports if wear went backwards.
    fn check_wear(&mut self, op: &'static str, seg: SegmentAddr) {
        let Some(probe) = self.wear_probe else { return };
        let idx = seg.index() as usize;
        if idx >= self.wear_seen.len() {
            return;
        }
        let Some(observed) = probe(&mut self.inner, seg) else {
            return;
        };
        if let Some(previous) = self.wear_seen[idx] {
            if observed < previous - 1e-9 {
                self.report(
                    op,
                    ViolationKind::WearDecrease {
                        seg,
                        previous,
                        observed,
                    },
                );
            }
        }
        self.wear_seen[idx] = Some(observed);
    }

    fn mark_erased(&mut self, seg: SegmentAddr) {
        if let Some(shadow) = self.shadows.get_mut(seg.index() as usize) {
            shadow.reset_erased();
        }
    }
}

impl SanitizedFlash<FlashController> {
    /// Wraps a [`FlashController`] with the wear-monotonicity probe
    /// installed (reading [`FlashController::wear_stats`]) and the
    /// controller's own trace enabled and synced to the sanitizer's
    /// backtrace settings.
    pub fn wrap_controller(ctl: FlashController) -> Self {
        let mut sanitized =
            Self::new(ctl).with_wear_probe(|c, seg| Some(c.wear_stats(seg).mean_cycles));
        sanitized.sync_inner_trace();
        sanitized
    }

    /// Pushes the sanitizer's backtrace capacity and read-recording policy
    /// into the wrapped controller's [`Trace`](flashmark_nor::Trace) and
    /// enables it, so the controller-side trace is never empty either. Call
    /// again after changing either setting.
    pub fn sync_inner_trace(&mut self) {
        let capacity = self.ring_capacity;
        let record_reads = self.record_reads;
        let trace = self.inner.trace_mut();
        trace.set_capacity(capacity);
        trace.set_record_reads(record_reads);
        trace.enable();
    }
}

impl<I: FlashInterface> FlashInterface for SanitizedFlash<I> {
    fn geometry(&self) -> FlashGeometry {
        self.geom
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.check_word("read_word", word);
        let result = self.inner.read_word(word);
        match &result {
            Ok(_) => {
                if self.record_reads {
                    self.push_event(FlashEvent::ReadWord { word });
                }
            }
            Err(e) => self.note_error("read_word", e),
        }
        result
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        if self.check_word("program_word", word) {
            let seg = self.geom.segment_of(word);
            let offset = self.geom.word_offset_in_segment(word);
            let already = self
                .shadows
                .get(seg.index() as usize)
                .is_some_and(|s| s.programmed.get(offset).copied().unwrap_or(false));
            if already {
                self.report("program_word", ViolationKind::Overprogram { word });
            }
            self.charge_row(
                "program_word",
                seg,
                offset / WORDS_PER_ROW,
                self.timings.program_word,
            );
        }
        let result = self.inner.program_word(word, value);
        match &result {
            Ok(()) => {
                let seg = self.geom.segment_of(word);
                let offset = self.geom.word_offset_in_segment(word);
                if let Some(shadow) = self.shadows.get_mut(seg.index() as usize) {
                    if let Some(flag) = shadow.programmed.get_mut(offset) {
                        *flag = true;
                    }
                    shadow.state = SegState::Programmed;
                }
                self.push_event(FlashEvent::ProgramWord { word });
                self.check_wear("program_word", seg);
            }
            Err(e) => self.note_error("program_word", e),
        }
        result
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        if self.check_seg("program_block", seg) && values.len() == self.geom.words_per_segment() {
            let first_programmed = self.shadows[seg.index() as usize]
                .programmed
                .iter()
                .position(|&p| p);
            if let Some(offset) = first_programmed {
                let word = self.geom.first_word(seg).offset(offset as u32);
                self.report("program_block", ViolationKind::Overprogram { word });
            }
            let n = values.len();
            let rows = (n / WORDS_PER_ROW).max(1);
            let per_row = self.timings.block_write(n) / rows as f64;
            for row in 0..rows {
                self.charge_row("program_block", seg, row, per_row);
            }
        }
        let result = self.inner.program_block(seg, values);
        match &result {
            Ok(()) => {
                if let Some(shadow) = self.shadows.get_mut(seg.index() as usize) {
                    shadow.programmed.iter_mut().for_each(|p| *p = true);
                    shadow.state = if values.iter().all(|&v| v == 0) {
                        SegState::AllZero
                    } else {
                        SegState::Programmed
                    };
                }
                self.push_event(FlashEvent::ProgramBlock { seg });
                self.check_wear("program_block", seg);
            }
            Err(e) => self.note_error("program_block", e),
        }
        result
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.check_seg("erase_segment", seg);
        let result = self.inner.erase_segment(seg);
        match &result {
            Ok(()) => {
                self.mark_erased(seg);
                self.push_event(FlashEvent::EraseSegment { seg });
                self.check_wear("erase_segment", seg);
            }
            Err(e) => self.note_error("erase_segment", e),
        }
        result
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        if self.check_seg("partial_erase", seg) {
            let found = self.shadows[seg.index() as usize].state;
            if found != SegState::AllZero {
                self.report(
                    "partial_erase",
                    ViolationKind::PartialEraseOrder { seg, found },
                );
            }
        }
        let result = self.inner.partial_erase(seg, t_pe);
        match &result {
            Ok(()) => {
                if let Some(shadow) = self.shadows.get_mut(seg.index() as usize) {
                    shadow.state = SegState::PartialErased;
                    // The erase pulse resets row heating (tCPT), but the
                    // cells were not fully erased: keep the per-word
                    // programmed flags, so programming over a partially
                    // erased segment still flags as overprogram.
                    shadow
                        .row_time
                        .iter_mut()
                        .for_each(|t| *t = Micros::new(0.0));
                }
                self.push_event(FlashEvent::PartialErase { seg, t_pe });
                self.check_wear("partial_erase", seg);
            }
            Err(e) => self.note_error("partial_erase", e),
        }
        result
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.check_seg("erase_until_clean", seg);
        let result = self.inner.erase_until_clean(seg);
        match &result {
            Ok(took) => {
                self.mark_erased(seg);
                self.push_event(FlashEvent::EraseUntilClean { seg, took: *took });
                self.check_wear("erase_until_clean", seg);
            }
            Err(e) => self.note_error("erase_until_clean", e),
        }
        result
    }

    fn elapsed(&self) -> Seconds {
        self.inner.elapsed()
    }
}

impl<I: PartialProgram> PartialProgram for SanitizedFlash<I> {
    fn partial_program(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError> {
        self.check_seg("partial_program", seg);
        let result = self.inner.partial_program(seg, t_pp);
        if let Err(e) = &result {
            self.note_error("partial_program", e);
        } else {
            self.check_wear("partial_program", seg);
        }
        result
    }
}

impl<I: BulkStress> BulkStress for SanitizedFlash<I> {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        self.check_seg("bulk_imprint", seg);
        let result = self.inner.bulk_imprint(seg, pattern, cycles, timing);
        match &result {
            Ok(_) => {
                // A bulk imprint is `cycles` erase+program rounds; it ends
                // one block-program past the last erase.
                if let Some(shadow) = self.shadows.get_mut(seg.index() as usize) {
                    shadow.reset_erased();
                    shadow.programmed.iter_mut().for_each(|p| *p = true);
                    shadow.state = if pattern.iter().all(|&v| v == 0) {
                        SegState::AllZero
                    } else {
                        SegState::Programmed
                    };
                }
                let n = pattern.len();
                let rows = (n / WORDS_PER_ROW).max(1);
                let per_row = self.timings.block_write(n) / rows as f64;
                for row in 0..rows {
                    self.charge_row("bulk_imprint", seg, row, per_row);
                }
                self.push_event(FlashEvent::BulkImprint { seg, cycles });
                self.check_wear("bulk_imprint", seg);
            }
            Err(e) => self.note_error("bulk_imprint", e),
        }
        result
    }
}
