#![forbid(unsafe_code)]
//! Runtime flash-protocol sanitizer for the Flashmark stack.
//!
//! [`SanitizedFlash`] wraps any [`FlashInterface`](flashmark_nor::FlashInterface)
//! and shadows the controller's protocol state, checking every operation
//! against the invariants real NOR parts impose — overprogramming, the
//! cumulative-program-time (`tCPT`) budget, lock discipline, address ranges,
//! the partial-erase ordering precondition of the paper's `ExtractFlashmark`
//! procedure (Fig. 8), and wear monotonicity.
//!
//! The sanitizer never changes behavior: every operation is forwarded and
//! its result returned unchanged. Detected violations are reported as
//! structured [`Violation`] values carrying a bounded backtrace of the
//! trailing [`FlashEvent`](flashmark_nor::FlashEvent)s, under a configurable
//! [`Policy`] (panic / collect / log).
//!
//! ```
//! use flashmark_nor::{FlashController, FlashGeometry, FlashInterface, FlashTimings, SegmentAddr};
//! use flashmark_physics::{Micros, PhysicsParams};
//! use flashmark_sanitizer::{SanitizedFlash, ViolationKind};
//!
//! let ctl = FlashController::new(
//!     PhysicsParams::msp430_like(),
//!     FlashGeometry::single_bank(4),
//!     FlashTimings::msp430(),
//!     7,
//! );
//! let mut flash = SanitizedFlash::wrap_controller(ctl);
//! let seg = SegmentAddr::new(0);
//!
//! // Partial erase without the erase + program-all-zero preamble: flagged.
//! flash.partial_erase(seg, Micros::new(30.0)).unwrap();
//! assert!(matches!(
//!     flash.violations()[0].kind,
//!     ViolationKind::PartialEraseOrder { .. }
//! ));
//! ```

pub mod flash;
pub mod violation;

pub use flash::{SanitizedFlash, WearProbe};
pub use violation::{Policy, SegState, Violation, ViolationKind};
