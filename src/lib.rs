#![forbid(unsafe_code)]
//! # Flashmark
//!
//! Umbrella crate for the Flashmark reproduction (DAC 2020): watermarking of
//! NOR flash memories for counterfeit detection.
//!
//! Re-exports every sub-crate under a stable facade:
//!
//! * [`physics`] — floating-gate cell physics (wear, erase dynamics, noise).
//! * [`nor`] — NOR flash array + controller emulation (the digital interface).
//! * [`msp430`] — MSP430F5438/F5529 device models (the paper's testbed).
//! * [`nand`] — SLC NAND emulation + adapter (the paper's "applicable to
//!   NAND too" claim, demonstrated).
//! * [`reram`] — ReRAM emulation: forming-voltage wear physics with
//!   set/reset endurance asymmetry, behind its own interface adapter.
//! * [`core`] — the Flashmark technique: imprint, extract, characterize,
//!   verify — and the cross-technology [`WatermarkScheme`] facade
//!   every backend implements.
//! * [`ecc`] — replication/majority voting, Hamming codes, CRC signatures.
//! * [`supply`] — supply-chain scenarios and counterfeiter attack models.
//! * [`sanitizer`] — flash-protocol runtime sanitizer: wraps any flash
//!   interface and reports invariant violations with event backtraces.
//! * [`fault`] — deterministic fault injection: wraps any flash interface
//!   and injects power loss, bit flips, read disturb, timing jitter and
//!   transient interface errors from a seed-driven [`fault::FaultPlan`].
//! * [`registry`] — append-only provenance registry: one digest-chained
//!   record per verification, sealed segments, merge-commutative service
//!   aggregates.
//! * [`serve`] — the incoming-inspection verification service: a channel
//!   front end sharding batched verify requests across workers while
//!   keeping the registry byte-identical at any thread count.
//! * [`trend`] — cross-run trend registry: a digest-chained log of
//!   campaign outcomes with detection-drift gates and advisory perf
//!   drift warnings.
//!
//! # Quickstart
//!
//! The scheme-generic entry points ([`prelude::provision`] /
//! [`prelude::inspect`]) run the same enroll → imprint → verify story on
//! any backend; here, the paper's NOR tPEW scheme:
//!
//! ```
//! use flashmark::prelude::*;
//! use flashmark::core::{FlashmarkConfig, TestStatus, WatermarkRecord};
//! use flashmark::nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
//! use flashmark::physics::PhysicsParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A simulated MSP430-class NOR part.
//! let mut chip = FlashController::new(
//!     PhysicsParams::msp430_like(),
//!     FlashGeometry::single_bank(8),
//!     FlashTimings::msp430(),
//!     0xC0FFE0,
//! );
//!
//! // Manufacturer side: enroll the die-sort record and imprint it.
//! let config = FlashmarkConfig::builder()
//!     .n_pe(60_000)
//!     .replicas(7)
//!     .build()?;
//! let params = NorTpewParams {
//!     config,
//!     seg: SegmentAddr::new(4),
//!     manufacturer_id: 0x1A2B,
//!     record: WatermarkRecord {
//!         manufacturer_id: 0x1A2B,
//!         die_id: 7,
//!         speed_grade: 2,
//!         status: TestStatus::Accept,
//!         year_week: 2026,
//!     },
//! };
//! let (enrollment, cost) = provision(&NorTpew, &mut chip, &params)?;
//! assert!(cost.cycles > 0, "wear-based backends pay an imprint cost");
//!
//! // Inspector side: verify against the enrollment.
//! let outcome = inspect(&NorTpew, &mut chip, &params, &enrollment)?;
//! assert_eq!(outcome.verdict, Verdict::Genuine);
//! # Ok(())
//! # }
//! ```
//!
//! The classic NOR-only imprint/extract API remains available under
//! [`core`] (`Imprinter`, `Extractor`, `Verifier`).

pub use flashmark_core as core;
pub use flashmark_ecc as ecc;
pub use flashmark_fault as fault;
pub use flashmark_msp430 as msp430;
pub use flashmark_nand as nand;
pub use flashmark_nor as nor;
pub use flashmark_physics as physics;
pub use flashmark_registry as registry;
pub use flashmark_reram as reram;
pub use flashmark_sanitizer as sanitizer;
pub use flashmark_serve as serve;
pub use flashmark_supply as supply;
pub use flashmark_trend as trend;

pub use flashmark_core::WatermarkScheme;

/// The cross-technology watermarking vocabulary in one import: the
/// [`WatermarkScheme`] trait, its verdict/error types, the scheme-generic
/// pipeline entry points, and every backend implementation.
///
/// ```
/// use flashmark::prelude::*;
/// ```
pub mod prelude {
    pub use flashmark_core::{
        inspect, provision, roundtrip, CounterfeitReason, ImprintCost, InconclusiveReason,
        NorEnrollment, NorTpew, NorTpewParams, SchemeError, SchemeVerification, Verdict,
        WatermarkScheme,
    };
    pub use flashmark_nand::{NandPuf, NandPufConfig, NandPufParams};
    pub use flashmark_reram::{ReramParams, ReramScheme, ReramWordAdapter};
}
