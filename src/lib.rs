#![forbid(unsafe_code)]
//! # Flashmark
//!
//! Umbrella crate for the Flashmark reproduction (DAC 2020): watermarking of
//! NOR flash memories for counterfeit detection.
//!
//! Re-exports every sub-crate under a stable facade:
//!
//! * [`physics`] — floating-gate cell physics (wear, erase dynamics, noise).
//! * [`nor`] — NOR flash array + controller emulation (the digital interface).
//! * [`msp430`] — MSP430F5438/F5529 device models (the paper's testbed).
//! * [`nand`] — SLC NAND emulation + adapter (the paper's "applicable to
//!   NAND too" claim, demonstrated).
//! * [`core`] — the Flashmark technique: imprint, extract, characterize,
//!   verify.
//! * [`ecc`] — replication/majority voting, Hamming codes, CRC signatures.
//! * [`supply`] — supply-chain scenarios and counterfeiter attack models.
//! * [`sanitizer`] — flash-protocol runtime sanitizer: wraps any flash
//!   interface and reports invariant violations with event backtraces.
//! * [`fault`] — deterministic fault injection: wraps any flash interface
//!   and injects power loss, bit flips, read disturb, timing jitter and
//!   transient interface errors from a seed-driven [`fault::FaultPlan`].
//! * [`registry`] — append-only provenance registry: one digest-chained
//!   record per verification, sealed segments, merge-commutative service
//!   aggregates.
//! * [`serve`] — the incoming-inspection verification service: a channel
//!   front end sharding batched verify requests across workers while
//!   keeping the registry byte-identical at any thread count.
//! * [`trend`] — cross-run trend registry: a digest-chained log of
//!   campaign outcomes with detection-drift gates and advisory perf
//!   drift warnings.
//!
//! # Quickstart
//!
//! ```
//! use flashmark::msp430::Msp430Flash;
//! use flashmark::core::{FlashmarkConfig, Imprinter, Extractor, Watermark};
//! use flashmark::nor::SegmentAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A simulated MSP430F5438 with its embedded NOR flash.
//! let mut chip = Msp430Flash::f5438(0xC0FFE0);
//!
//! // Imprint the manufacturer's mark into segment 4 with 60 K P/E cycles.
//! let config = FlashmarkConfig::builder()
//!     .n_pe(60_000)
//!     .replicas(7)
//!     .build()?;
//! let watermark = Watermark::from_ascii("TC:ACCEPT")?;
//! let seg = SegmentAddr::new(4);
//! Imprinter::new(&config).imprint(&mut chip, seg, &watermark)?;
//!
//! // Later, a system integrator extracts and checks it.
//! let extraction = Extractor::new(&config).extract(&mut chip, seg, watermark.len())?;
//! let recovered = extraction.bits();
//! assert_eq!(recovered, watermark.bits());
//! # Ok(())
//! # }
//! ```

pub use flashmark_core as core;
pub use flashmark_ecc as ecc;
pub use flashmark_fault as fault;
pub use flashmark_msp430 as msp430;
pub use flashmark_nand as nand;
pub use flashmark_nor as nor;
pub use flashmark_physics as physics;
pub use flashmark_registry as registry;
pub use flashmark_sanitizer as sanitizer;
pub use flashmark_serve as serve;
pub use flashmark_supply as supply;
pub use flashmark_trend as trend;
