//! The umbrella-crate sanitizer facade works as documented in the README:
//! wrapping a device model, catching a protocol fault, and running the
//! sanitized core entry points end to end.

use flashmark::core::{extract_sanitized, imprint_sanitized, FlashmarkConfig, Watermark};
use flashmark::msp430::Msp430Flash;
use flashmark::nor::{FlashInterface, NorError, SegmentAddr};
use flashmark::physics::Micros;
use flashmark::sanitizer::{SanitizedFlash, ViolationKind};

/// The README's sanitizer example, verbatim in spirit.
#[test]
fn readme_sanitizer_example_works() -> Result<(), NorError> {
    let mut flash = SanitizedFlash::new(Msp430Flash::f5438(7));

    let seg = SegmentAddr::new(0);
    flash.erase_segment(seg)?;
    flash.partial_erase(seg, Micros::new(20.0))?; // missing program_all_zero!
    assert!(!flash.is_clean());
    let v = &flash.violations()[0];
    assert!(matches!(v.kind, ViolationKind::PartialEraseOrder { .. }));
    assert!(!v.backtrace.is_empty());
    Ok(())
}

#[test]
fn device_level_imprint_extract_is_protocol_clean() {
    let mut chip = Msp430Flash::f5438(0xC0FFEE);
    let seg = chip.watermark_segment();
    let config = FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(3)
        .build()
        .unwrap();
    let wm = Watermark::from_ascii("TC").unwrap();

    let imprinted = imprint_sanitized(&config, &mut chip, seg, &wm).unwrap();
    assert!(
        imprinted.is_clean(),
        "imprint violations: {:?}",
        imprinted.violations
    );

    let extracted = extract_sanitized(&config, &mut chip, seg, wm.len()).unwrap();
    assert!(
        extracted.is_clean(),
        "extract violations: {:?}",
        extracted.violations
    );
    assert_eq!(extracted.value.bits(), wm.bits());
}
