//! Adversarial integration tests: every capability a counterfeiter has,
//! and why each fails against the wear watermark.

use flashmark::core::{CounterfeitReason, FlashmarkConfig, TestStatus, Verdict, Verifier};
use flashmark::msp430::Msp430Variant;
use flashmark::nor::interface::{BulkStress, FlashInterface, FlashInterfaceExt, ImprintTiming};
use flashmark::physics::Micros;
use flashmark::supply::counterfeiter::{
    Attack, CloneData, EraseAndReprogram, MetadataForge, StressPadding,
};
use flashmark::supply::{Chip, Manufacturer, Provenance};

const MFG: u16 = 0x7C01;

fn setup() -> (Manufacturer, Verifier) {
    let cfg = FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap();
    (
        Manufacturer::new(MFG, Msp430Variant::F5438, cfg.clone()),
        Verifier::new(cfg, MFG),
    )
}

fn verdict(verifier: &Verifier, chip: &mut Chip) -> Verdict {
    let seg = chip.flash.watermark_segment();
    verifier.verify(&mut chip.flash, seg).unwrap().verdict
}

#[test]
fn wear_is_monotone_under_any_attack() {
    // The physical invariant everything rests on: no digital operation
    // reduces accumulated wear.
    let (mut fab, _) = setup();
    let mut chip = fab.produce(0xA1, TestStatus::Reject).unwrap();
    let seg = chip.flash.watermark_segment();
    let before = chip.flash.main_mut().wear_stats(seg);

    // Attack barrage: erase storms, reprogram, more stress.
    for _ in 0..50 {
        chip.flash.erase_segment(seg).unwrap();
        chip.flash.program_all_zero(seg).unwrap();
    }
    chip.flash
        .bulk_imprint(
            seg,
            &vec![0xFFFFu16; 256],
            10_000,
            ImprintTiming::Accelerated,
        )
        .unwrap();

    let after = chip.flash.main_mut().wear_stats(seg);
    assert!(after.min_cycles >= before.min_cycles - 1e-9);
    assert!(after.mean_cycles > before.mean_cycles);
}

#[test]
fn reject_cannot_become_accept_by_rewriting_data() {
    let (mut fab, verifier) = setup();
    let mut chip = fab.produce(0xA2, TestStatus::Reject).unwrap();

    // Program the exact bit pattern of a forged ACCEPT record as plain data.
    let forged = flashmark::core::WatermarkRecord {
        manufacturer_id: MFG,
        die_id: 9999,
        speed_grade: 3,
        status: TestStatus::Accept,
        year_week: 2004,
    };
    let cfg = FlashmarkConfig::builder()
        .n_pe(1)
        .replicas(7)
        .build()
        .unwrap();
    let pattern = flashmark::core::Imprinter::new(&cfg)
        .pattern(&chip.flash, &forged.to_watermark())
        .unwrap();
    EraseAndReprogram { pattern }.apply(&mut chip).unwrap();

    // The verifier never reads the stored data — extraction reprograms the
    // segment and reads the wear. The REJECT record is still there.
    match verdict(&verifier, &mut chip) {
        Verdict::Counterfeit(CounterfeitReason::RejectedDie) => {}
        other => panic!("forged data fooled the verifier: {other:?}"),
    }
}

#[test]
fn metadata_forgery_changes_nothing() {
    let (mut fab, verifier) = setup();
    let mut chip = fab.produce(0xA3, TestStatus::Reject).unwrap();
    MetadataForge.apply(&mut chip).unwrap();
    assert_ne!(verdict(&verifier, &mut chip), Verdict::Genuine);
}

#[test]
fn stress_padding_is_detected_not_accepted() {
    // Stressing the whole segment destroys the record; it can never produce
    // a *valid* different record because the CRC would have to match.
    let (mut fab, verifier) = setup();
    let mut chip = fab.produce(0xA4, TestStatus::Reject).unwrap();
    StressPadding { cycles: 60_000 }.apply(&mut chip).unwrap();
    match verdict(&verifier, &mut chip) {
        Verdict::Counterfeit(_) => {}
        Verdict::Genuine => panic!("stress padding must never yield a genuine verdict"),
        Verdict::Inconclusive(_) => panic!("fault-free verification must be conclusive"),
    }
}

#[test]
fn cloned_data_on_fresh_silicon_has_no_wear() {
    let (mut fab, verifier) = setup();
    let mut donor = fab.produce(0xA5, TestStatus::Accept).unwrap();
    let bits = CloneData::harvest(&mut donor, 3).unwrap();

    let mut clone = Chip::fresh(Msp430Variant::F5438, 0xFA4E, Provenance::Clone);
    let cfg = FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .build()
        .unwrap();
    CloneData {
        config: cfg,
        donor_bits: bits,
    }
    .apply(&mut clone)
    .unwrap();

    assert_eq!(
        verdict(&verifier, &mut clone),
        Verdict::Counterfeit(CounterfeitReason::NoWatermark),
        "data without wear is not a watermark"
    );
}

#[test]
fn partial_stress_tamper_breaks_the_signature() {
    // A surgical attacker stresses only some cells (good -> bad flips on a
    // subset). The CRC catches it.
    let (mut fab, verifier) = setup();
    let mut chip = fab.produce(0xA6, TestStatus::Reject).unwrap();
    let seg = chip.flash.watermark_segment();

    // Stress the first 4 words' cells (64 bits of the first replica).
    let mut pattern = vec![0xFFFFu16; 256];
    for w in pattern.iter_mut().take(4) {
        *w = 0x0000;
    }
    chip.flash
        .bulk_imprint(seg, &pattern, 60_000, ImprintTiming::Accelerated)
        .unwrap();

    match verdict(&verifier, &mut chip) {
        Verdict::Genuine => panic!("partial tamper slipped through"),
        Verdict::Counterfeit(_) => {}
        Verdict::Inconclusive(_) => panic!("fault-free verification must be conclusive"),
    }
}

#[test]
fn targeted_bit_stress_cannot_flip_reject_to_accept() {
    // The attacker knows the record layout; the status byte's ACCEPT (0xA5)
    // and REJECT (0x5A) encodings were chosen as complements, so converting
    // one to the other needs flips in BOTH directions — and the attacker
    // only has good→bad. Stressing the achievable subset breaks the CRC.
    use flashmark::supply::counterfeiter::TargetedBitStress;
    let (mut fab, verifier) = setup();
    let mut chip = fab.produce(0xA7, TestStatus::Reject).unwrap();

    // Bits the attacker would need to change status byte + fix the CRC:
    // stress every bit where the forged record wants 0 but the real one has
    // 1 (the only direction wear can move).
    let real = flashmark::core::WatermarkRecord {
        manufacturer_id: MFG,
        die_id: 1,
        speed_grade: 3,
        status: TestStatus::Reject,
        year_week: 2004,
    };
    let forged = flashmark::core::WatermarkRecord {
        status: TestStatus::Accept,
        ..real
    };
    let real_bits = real.to_watermark();
    let forged_bits = forged.to_watermark();
    let achievable: Vec<usize> = real_bits
        .bits()
        .iter()
        .zip(forged_bits.bits())
        .enumerate()
        .filter(|(_, (&r, &f))| r && !f) // 1 -> 0 only
        .map(|(i, _)| i)
        .collect();
    assert!(!achievable.is_empty());

    TargetedBitStress {
        bit_positions: achievable,
        replicas: 7,
        cycles: 80_000,
    }
    .apply(&mut chip)
    .unwrap();
    match verdict(&verifier, &mut chip) {
        Verdict::Genuine => panic!("targeted stress forged an accept record"),
        Verdict::Counterfeit(_) => {}
        Verdict::Inconclusive(_) => panic!("fault-free verification must be conclusive"),
    }
}

#[test]
fn forging_reject_records_by_one_way_flips_never_validates() {
    // Sample the attacker's whole capability space: arbitrary subsets of
    // 1→0 flips applied to a signed REJECT record. None may decode as a
    // valid record with ACCEPT status.
    use flashmark::core::WatermarkRecord;
    use flashmark::physics::rng::SplitMix64;

    let real = flashmark::core::WatermarkRecord {
        manufacturer_id: MFG,
        die_id: 77,
        speed_grade: 2,
        status: TestStatus::Reject,
        year_week: 2004,
    };
    let base = real.to_watermark().bits().to_vec();
    let one_positions: Vec<usize> = base
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect();

    let mut rng = SplitMix64::new(0xF0496);
    let mut validated_as_accept = 0;
    for _ in 0..5000 {
        let mut forged = base.clone();
        // Random one-way flip subset.
        for &pos in &one_positions {
            if rng.next_f64() < 0.3 {
                forged[pos] = false;
            }
        }
        let wm = flashmark::core::Watermark::from_bits(forged).unwrap();
        if let Ok(r) = WatermarkRecord::from_watermark(&wm) {
            if r.status == TestStatus::Accept {
                validated_as_accept += 1;
            }
        }
    }
    assert_eq!(
        validated_as_accept, 0,
        "a one-way forgery validated as accept"
    );
}

#[test]
fn recycled_chips_detected_across_usage_profiles() {
    use flashmark::core::StressDetector;
    use flashmark::supply::{live_first_life, sampled_probe_segments, UsageProfile};

    let (mut fab, _) = setup();
    let det = StressDetector::fig5();

    // Wide wear (a wear-leveled ring over 1/8 of the device): random probe
    // sampling finds it reliably.
    let ring = UsageProfile::CircularBuffer {
        ring_start: 0,
        ring_segments: 64,
        total_erases: 640_000,
    };
    let mut chip = fab.produce(0xB0, TestStatus::Accept).unwrap();
    live_first_life(&mut chip, &ring).unwrap();
    let probes = sampled_probe_segments(chip.flash.geometry().total_segments() - 1, 24, 99);
    let hits = probes
        .into_iter()
        .filter(|&seg| {
            det.classify(&mut chip.flash, seg).unwrap().verdict
                == flashmark::core::SegmentCondition::Stressed
        })
        .count();
    assert!(hits > 0, "sampled probes missed a 64-segment worn ring");

    // Narrow wear (a 4-segment log region): the detector sees it *when a
    // probe lands there* — probe placement, not sensitivity, is the
    // limitation for narrowly-worn recycled chips.
    let logger = UsageProfile::DataLogger {
        log_start: 16,
        log_segments: 4,
        cycles: 40_000,
    };
    let mut chip = fab.produce(0xB1, TestStatus::Accept).unwrap();
    live_first_life(&mut chip, &logger).unwrap();
    let on_target = det
        .classify(&mut chip.flash, flashmark::nor::SegmentAddr::new(17))
        .unwrap();
    assert_eq!(
        on_target.verdict,
        flashmark::core::SegmentCondition::Stressed
    );
    let off_target = det
        .classify(&mut chip.flash, flashmark::nor::SegmentAddr::new(300))
        .unwrap();
    assert_eq!(off_target.verdict, flashmark::core::SegmentCondition::Fresh);
}

#[test]
fn balanced_encoding_flags_stress_attacks() {
    use flashmark::core::{BalancePolicy, Watermark};
    let wm = Watermark::from_ascii("BALANCE-ME").unwrap().balanced();
    let policy = BalancePolicy::half(0.06).unwrap();
    assert!(policy.check_watermark(&wm));

    // Any added stress only flips 1 -> 0; flipping >6% of bits breaks the
    // constraint.
    let mut attacked = wm.bits().to_vec();
    let n_flip = attacked.len() / 6;
    let mut flipped = 0;
    for b in &mut attacked {
        if *b && flipped < n_flip {
            *b = false;
            flipped += 1;
        }
    }
    assert!(!policy.check(&attacked));
}
