//! The shared `WatermarkScheme` contract, property-tested over every
//! backend (NOR tPEW, intrinsic NAND PUF, ReRAM forming):
//!
//! * provision (enroll + imprint) followed by inspect on the same chip
//!   accepts — the genuine path holds at any chip seed;
//! * inspecting a blank chip against another die's enrollment rejects —
//!   the forgery asymmetry holds at any seed pair;
//! * imprinting never *decreases* the wear estimate, and wear-based
//!   schemes strictly increase it (the intrinsic NAND PUF is free);
//! * the differential backend campaign artifact is byte-identical at
//!   `--threads 1` and `--threads 8` for arbitrary campaign seeds.

use proptest::prelude::*;

use flashmark::prelude::*;
use flashmark_bench::backend_campaign::{run_backend_campaign, BackendCampaignOptions};
use flashmark_bench::json::ToJson as _;
use flashmark_core::{FlashmarkConfig, TestStatus, WatermarkRecord};
use flashmark_nand::{BlockAddr, NandChip, NandGeometry};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::{Micros, PhysicsParams};
use flashmark_reram::ReramChip;

const MANUFACTURER: u16 = 0x1A2B;

fn record(status: TestStatus) -> WatermarkRecord {
    WatermarkRecord {
        manufacturer_id: MANUFACTURER,
        die_id: 11,
        speed_grade: 1,
        status,
        year_week: 2031,
    }
}

fn config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .expect("config")
}

fn nor_chip(seed: u64) -> FlashController {
    let mut chip = FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(8),
        FlashTimings::msp430(),
        seed,
    );
    chip.trace_mut().set_capacity(0);
    chip
}

fn nor_params() -> NorTpewParams {
    NorTpewParams {
        config: config(),
        seg: SegmentAddr::new(0),
        manufacturer_id: MANUFACTURER,
        record: record(TestStatus::Accept),
    }
}

fn nand_chip(seed: u64) -> NandChip {
    NandChip::new(NandGeometry::tiny(), seed)
}

fn nand_params() -> NandPufParams {
    NandPufParams {
        config: NandPufConfig::default(),
        block: BlockAddr::new(0),
        manufacturer_id: MANUFACTURER,
        record: record(TestStatus::Accept),
    }
}

fn reram_chip(seed: u64) -> ReramWordAdapter {
    ReramWordAdapter::new(ReramChip::new(FlashGeometry::single_bank(8), seed))
}

fn reram_params() -> ReramParams {
    // The ReRAM operating point: forming stress is a single pass whatever
    // the level, so the campaign cranks stress and replica count to absorb
    // the wider filament-geometry variation (see `reram_config` in bench).
    ReramParams {
        config: FlashmarkConfig::builder()
            .n_pe(90_000)
            .replicas(21)
            .t_pew(Micros::new(28.0))
            .build()
            .expect("config"),
        seg: SegmentAddr::new(0),
        manufacturer_id: MANUFACTURER,
        record: record(TestStatus::Accept),
    }
}

/// The genuine / blank / wear-monotonicity contract, scheme-generically.
fn contract<S: WatermarkScheme>(
    scheme: &S,
    params: &S::Params,
    mk: impl Fn(u64) -> S::Chip,
    seed: u64,
) -> Result<(), String> {
    // Genuine: provision then inspect the same chip.
    let mut chip = mk(seed);
    let wear_before = scheme.wear_estimate(&mut chip, params);
    let (enrollment, cost) =
        provision(scheme, &mut chip, params).map_err(|e| format!("provision: {e}"))?;
    let wear_after = scheme.wear_estimate(&mut chip, params);
    if scheme.imprints() {
        if cost.cycles == 0 {
            return Err("wear-based scheme reported a free imprint".into());
        }
        if wear_after <= wear_before {
            return Err(format!(
                "imprint did not increase wear ({wear_before} -> {wear_after})"
            ));
        }
    } else {
        if cost.cycles != 0 {
            return Err("intrinsic scheme reported an imprint cost".into());
        }
        if wear_after < wear_before {
            return Err(format!(
                "wear decreased without an imprint ({wear_before} -> {wear_after})"
            ));
        }
    }
    let genuine = inspect(scheme, &mut chip, params, &enrollment)
        .map_err(|e| format!("genuine inspect: {e}"))?;
    if genuine.verdict != Verdict::Genuine {
        return Err(format!("genuine chip judged {:?}", genuine.verdict));
    }

    // Blank: a different die never passes another die's enrollment.
    let mut blank = mk(seed ^ 0x5DEE_CE55_0000_0001);
    let forged = inspect(scheme, &mut blank, params, &enrollment)
        .map_err(|e| format!("blank inspect: {e}"))?;
    if !matches!(forged.verdict, Verdict::Counterfeit(_)) {
        return Err(format!("blank chip judged {:?}", forged.verdict));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn nor_tpew_satisfies_the_scheme_contract(seed in 0u64..1u64 << 48) {
        contract(&NorTpew, &nor_params(), nor_chip, seed).unwrap();
    }

    #[test]
    fn nand_puf_satisfies_the_scheme_contract(seed in 0u64..1u64 << 48) {
        contract(&NandPuf, &nand_params(), nand_chip, seed).unwrap();
    }

    #[test]
    fn reram_forming_satisfies_the_scheme_contract(seed in 0u64..1u64 << 48) {
        contract(&ReramScheme, &reram_params(), reram_chip, seed).unwrap();
    }

    #[test]
    fn backend_campaign_is_thread_invariant_at_any_seed(seed in 0u64..1u64 << 32) {
        let mut serial = BackendCampaignOptions::tiny(1);
        serial.seed = seed;
        let mut parallel = BackendCampaignOptions::tiny(8);
        parallel.seed = seed;
        let a = run_backend_campaign(&serial).unwrap().to_json().pretty();
        let b = run_backend_campaign(&parallel).unwrap().to_json().pretty();
        prop_assert_eq!(a, b);
    }
}
