//! Reproducibility: the whole stack is deterministic given seeds.

use flashmark::core::{Extractor, FlashmarkConfig, Imprinter, Watermark};
use flashmark::msp430::Msp430Flash;
use flashmark::nor::SegmentAddr;
use flashmark::supply::{ScenarioConfig, SupplyChainScenario};

fn pipeline(seed: u64) -> Vec<bool> {
    let mut chip = Msp430Flash::f5438(seed);
    let seg = chip.watermark_segment();
    let cfg = FlashmarkConfig::builder()
        .n_pe(40_000)
        .replicas(3)
        .build()
        .unwrap();
    let wm = Watermark::from_ascii("DETERMINISM").unwrap();
    Imprinter::new(&cfg).imprint(&mut chip, seg, &wm).unwrap();
    Extractor::new(&cfg)
        .extract(&mut chip, seg, wm.len())
        .unwrap()
        .channel()
        .to_vec()
}

#[test]
fn same_seed_same_raw_channel() {
    assert_eq!(pipeline(0xD1), pipeline(0xD1));
}

#[test]
fn different_seed_different_raw_channel_noise() {
    // The decoded watermark should agree, but the raw per-cell channel
    // (which carries each chip's process variation) should not be
    // bit-identical between chips.
    let a = pipeline(0xD2);
    let b = pipeline(0xD3);
    assert_ne!(a, b, "two chips should differ somewhere in the raw channel");
}

#[test]
fn scenario_statistics_are_reproducible() {
    let s1 = SupplyChainScenario::new(ScenarioConfig::small(0x5EED))
        .run()
        .unwrap();
    let s2 = SupplyChainScenario::new(ScenarioConfig::small(0x5EED))
        .run()
        .unwrap();
    assert_eq!(format!("{s1}"), format!("{s2}"));
}

/// The parallel trial engine's core guarantee: a reduced-profile `run_all`
/// produces byte-identical JSON, `.jsonl`, and `.prom` artifacts at 1
/// worker thread (the exact legacy serial path) and at 8. The only
/// exceptions are `obs_timings.json` and `service_timings.json`, which
/// exist precisely to quarantine wall-clock measurements away from the
/// deterministic artifacts.
#[test]
fn suite_json_artifacts_identical_across_thread_counts() {
    use flashmark_bench::suite::{run_suite, Profile, SuiteOptions};

    let base = std::env::temp_dir().join(format!("flashmark_determinism_{}", std::process::id()));
    let mut artifacts: Vec<std::collections::BTreeMap<String, Vec<u8>>> = Vec::new();
    for threads in [1usize, 8] {
        let dir = base.join(format!("threads_{threads}"));
        let report = run_suite(&SuiteOptions {
            threads,
            profile: Profile::Smoke,
            results_dir: dir.clone(),
        })
        .expect("suite I/O");
        assert!(
            report.failures().is_empty(),
            "smoke suite failed at {threads} thread(s): {:?}",
            report.failures()
        );
        let mut files = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(&dir).expect("results dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            // The quarantine files for wall-clock data are the only
            // deterministic-format artifacts allowed to differ.
            if path
                .extension()
                .is_some_and(|e| e == "json" || e == "jsonl" || e == "prom")
                && name != "obs_timings.json"
                && name != "service_timings.json"
            {
                files.insert(name, std::fs::read(&path).expect("artifact"));
            }
        }
        assert!(!files.is_empty(), "suite wrote no JSON artifacts");
        assert!(
            files.contains_key("obs_report.json"),
            "suite did not write obs_report.json"
        );
        assert!(
            files.contains_key("trend_log.jsonl") && files.contains_key("trend_report.json"),
            "suite did not append the trend log and drift report"
        );
        assert!(
            files.contains_key("service_metrics_smoke.prom"),
            "suite did not write the metrics exposition"
        );
        artifacts.push(files);
    }
    let (serial, parallel) = (&artifacts[0], &artifacts[1]);
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "thread counts produced different artifact sets"
    );
    for (name, bytes) in serial {
        assert_eq!(
            bytes, &parallel[name],
            "{name} differs between --threads 1 and --threads 8"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn experiments_are_reproducible() {
    use flashmark::core::SweepSpec;
    use flashmark::physics::Micros;
    let sweep = SweepSpec::new(Micros::new(20.0), Micros::new(40.0), Micros::new(10.0)).unwrap();
    let run = || {
        let mut chip = Msp430Flash::f5438(0x4E9);
        let cfg = FlashmarkConfig::builder()
            .n_pe(20_000)
            .replicas(1)
            .reads(1)
            .build()
            .unwrap();
        let wm = Watermark::from_bits(vec![false; 256]).unwrap();
        Imprinter::new(&cfg)
            .imprint(&mut chip, SegmentAddr::new(0), &wm)
            .unwrap();
        sweep
            .times()
            .iter()
            .map(|&t| {
                let c = FlashmarkConfig::builder()
                    .n_pe(1)
                    .replicas(1)
                    .reads(1)
                    .t_pew(t)
                    .build()
                    .unwrap();
                Extractor::new(&c)
                    .extract(&mut chip, SegmentAddr::new(0), wm.len())
                    .unwrap()
                    .ber_against(&wm)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
