//! The provenance service's fleet-scale determinism guarantees: any
//! `--threads N` produces a byte-identical registry, campaign artifact,
//! telemetry exposition, and trend-log record, and replaying a batch
//! never duplicates records.

use flashmark_bench::json::ToJson as _;
use flashmark_bench::service_campaign::{
    build_campaign_service, campaign_request, summarize, ServiceCampaignOptions,
};
use flashmark_bench::trend::service_record;
use flashmark_core::FlashmarkConfig;
use flashmark_registry::RegistryOptions;
use flashmark_serve::{PopulationSpec, ServiceConfig, VerificationService};

/// One thread count's run of the reduced campaign stream: every byte
/// surface that must be identical across `--threads` counts.
struct CampaignBytes {
    registry: String,
    artifact_json: String,
    exposition: String,
    trend_line: String,
    vlat_observations: u64,
}

/// Drives the reduced campaign stream at the given thread count.
fn run_campaign(threads: usize) -> CampaignBytes {
    let opts = ServiceCampaignOptions::tiny(threads);
    let mut service = build_campaign_service(opts.seed).expect("campaign service");
    let population = service.population().len() as u64;
    let handle = service.handle();
    let mut duplicates = 0u64;
    let mut done = 0u64;
    while done < opts.requests {
        let end = (done + opts.batch).min(opts.requests);
        for i in done..end {
            handle
                .submit(campaign_request(opts.seed, i, population))
                .expect("submit");
        }
        duplicates += service.serve_drained(threads).expect("serve").duplicates;
        done = end;
    }
    let data = summarize(&service, &opts, duplicates);
    assert_eq!(data.requests, opts.requests);
    assert_eq!(data.duplicates, 0, "clean stream must not deduplicate");
    CampaignBytes {
        registry: service.registry().contents(),
        exposition: service.telemetry().expose(),
        trend_line: service_record(&data).canonical_line(),
        vlat_observations: data.virtual_latency_histogram.iter().map(|b| b.count).sum(),
        artifact_json: data.to_json().pretty(),
    }
}

/// Tentpole guarantee: the registry file, `service_campaign` artifact,
/// telemetry exposition (including the ops-weighted virtual-latency
/// histograms), and the appended trend-log record are all byte-identical
/// at `--threads 1` (the exact serial path) and `--threads 8`.
#[test]
fn registry_and_artifact_identical_across_thread_counts() {
    let serial = run_campaign(1);
    let parallel = run_campaign(8);
    assert_eq!(
        serial.registry, parallel.registry,
        "registry file differs between --threads 1 and --threads 8"
    );
    assert_eq!(
        serial.artifact_json, parallel.artifact_json,
        "service_campaign artifact differs between --threads 1 and --threads 8"
    );
    assert_eq!(
        serial.exposition, parallel.exposition,
        "metrics exposition differs between --threads 1 and --threads 8"
    );
    assert_eq!(
        serial.trend_line, parallel.trend_line,
        "trend record differs between --threads 1 and --threads 8"
    );
    // The exposition actually carries the latency histograms (one
    // observation per request), not just empty scaffolding.
    assert_eq!(
        serial.vlat_observations,
        ServiceCampaignOptions::tiny(1).requests,
        "virtual-latency histogram must hold one observation per request"
    );
    assert!(
        serial
            .exposition
            .contains("service_virtual_latency_ops_bucket"),
        "exposition lacks virtual-latency buckets:\n{}",
        serial.exposition
    );

    // The bytes `Registry::write_to` persists are exactly `contents()`.
    let dir = std::env::temp_dir().join(format!(
        "flashmark_service_determinism_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("registry.log");
    {
        let mut service = build_campaign_service(0x5E47).expect("campaign service");
        let population = service.population().len() as u64;
        let handle = service.handle();
        for i in 0..64u64 {
            handle
                .submit(campaign_request(0x5E47, i, population))
                .expect("submit");
        }
        service.serve_drained(8).expect("serve");
        let contents = service.registry().contents();
        let registry = service.into_registry();
        registry.write_to(&path).expect("write registry");
        let on_disk = std::fs::read_to_string(&path).expect("read registry");
        assert_eq!(on_disk, contents);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying the same batch is idempotent: the duplicate submissions are
/// rejected by request id, so the record count, root digest, and stats are
/// unchanged — no record is ever double-counted.
#[test]
fn replaying_a_batch_is_idempotent() {
    let config = FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(5)
        .reads(1)
        .build()
        .expect("config");
    let population = PopulationSpec::tiny(0x1DEA)
        .build(&config, 0x7C01)
        .expect("population");
    let n = population.len() as u64;
    let mut cfg = ServiceConfig::new(config, 0x7C01, 0x1DEA);
    cfg.registry = RegistryOptions {
        seal_every: 64,
        retain_records: true,
    };
    let mut service = VerificationService::new(population, cfg).expect("service");
    let handle = service.handle();

    let submit_batch = |handle: &flashmark_serve::RequestSender| {
        for i in 0..200u64 {
            handle
                .submit(campaign_request(0x1DEA, i, n))
                .expect("submit");
        }
    };

    submit_batch(&handle);
    let first = service.serve_drained(4).expect("serve");
    assert_eq!(first.recorded, 200);
    assert_eq!(first.duplicates, 0);
    let root = service.registry().root();
    let records = service.registry().len();
    let contents = service.registry().contents();

    // The replay: every request id is already in the log.
    submit_batch(&handle);
    let replay = service.serve_drained(4).expect("serve replay");
    assert_eq!(replay.recorded, 0, "replayed records must not append");
    assert_eq!(replay.duplicates, 200);
    assert_eq!(
        service.registry().root(),
        root,
        "root digest changed on replay"
    );
    assert_eq!(service.registry().len(), records);
    assert_eq!(
        service.registry().contents(),
        contents,
        "registry bytes changed on replay"
    );
}
