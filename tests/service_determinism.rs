//! The provenance service's fleet-scale determinism guarantees: any
//! `--threads N` produces a byte-identical registry and campaign artifact,
//! and replaying a batch never duplicates records.

use flashmark_bench::json::ToJson as _;
use flashmark_bench::service_campaign::{
    build_campaign_service, campaign_request, summarize, ServiceCampaignOptions,
};
use flashmark_core::FlashmarkConfig;
use flashmark_registry::RegistryOptions;
use flashmark_serve::{PopulationSpec, ServiceConfig, VerificationService};

/// Drives the reduced campaign stream at the given thread count and
/// returns the full registry file contents plus the rendered campaign
/// artifact JSON.
fn run_campaign(threads: usize) -> (String, String) {
    let opts = ServiceCampaignOptions::tiny(threads);
    let mut service = build_campaign_service(opts.seed).expect("campaign service");
    let population = service.population().len() as u64;
    let handle = service.handle();
    let mut duplicates = 0u64;
    let mut done = 0u64;
    while done < opts.requests {
        let end = (done + opts.batch).min(opts.requests);
        for i in done..end {
            handle
                .submit(campaign_request(opts.seed, i, population))
                .expect("submit");
        }
        duplicates += service.serve_drained(threads).expect("serve").duplicates;
        done = end;
    }
    let data = summarize(&service, &opts, duplicates);
    assert_eq!(data.requests, opts.requests);
    assert_eq!(data.duplicates, 0, "clean stream must not deduplicate");
    (service.registry().contents(), data.to_json().pretty())
}

/// Tentpole guarantee: the registry file and `service_campaign` artifact
/// are byte-identical at `--threads 1` (the exact serial path) and
/// `--threads 8`.
#[test]
fn registry_and_artifact_identical_across_thread_counts() {
    let (serial_registry, serial_json) = run_campaign(1);
    let (parallel_registry, parallel_json) = run_campaign(8);
    assert_eq!(
        serial_registry, parallel_registry,
        "registry file differs between --threads 1 and --threads 8"
    );
    assert_eq!(
        serial_json, parallel_json,
        "service_campaign artifact differs between --threads 1 and --threads 8"
    );

    // The bytes `Registry::write_to` persists are exactly `contents()`.
    let dir = std::env::temp_dir().join(format!(
        "flashmark_service_determinism_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("registry.log");
    {
        let mut service = build_campaign_service(0x5E47).expect("campaign service");
        let population = service.population().len() as u64;
        let handle = service.handle();
        for i in 0..64u64 {
            handle
                .submit(campaign_request(0x5E47, i, population))
                .expect("submit");
        }
        service.serve_drained(8).expect("serve");
        let contents = service.registry().contents();
        let registry = service.into_registry();
        registry.write_to(&path).expect("write registry");
        let on_disk = std::fs::read_to_string(&path).expect("read registry");
        assert_eq!(on_disk, contents);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replaying the same batch is idempotent: the duplicate submissions are
/// rejected by request id, so the record count, root digest, and stats are
/// unchanged — no record is ever double-counted.
#[test]
fn replaying_a_batch_is_idempotent() {
    let config = FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(5)
        .reads(1)
        .build()
        .expect("config");
    let population = PopulationSpec::tiny(0x1DEA)
        .build(&config, 0x7C01)
        .expect("population");
    let n = population.len() as u64;
    let mut cfg = ServiceConfig::new(config, 0x7C01, 0x1DEA);
    cfg.registry = RegistryOptions {
        seal_every: 64,
        retain_records: true,
    };
    let mut service = VerificationService::new(population, cfg).expect("service");
    let handle = service.handle();

    let submit_batch = |handle: &flashmark_serve::RequestSender| {
        for i in 0..200u64 {
            handle
                .submit(campaign_request(0x1DEA, i, n))
                .expect("submit");
        }
    };

    submit_batch(&handle);
    let first = service.serve_drained(4).expect("serve");
    assert_eq!(first.recorded, 200);
    assert_eq!(first.duplicates, 0);
    let root = service.registry().root();
    let records = service.registry().len();
    let contents = service.registry().contents();

    // The replay: every request id is already in the log.
    submit_batch(&handle);
    let replay = service.serve_drained(4).expect("serve replay");
    assert_eq!(replay.recorded, 0, "replayed records must not append");
    assert_eq!(replay.duplicates, 200);
    assert_eq!(
        service.registry().root(),
        root,
        "root digest changed on replay"
    );
    assert_eq!(service.registry().len(), records);
    assert_eq!(
        service.registry().contents(),
        contents,
        "registry bytes changed on replay"
    );
}
