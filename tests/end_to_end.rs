//! Cross-crate integration: the full Flashmark pipeline from physics to
//! supply chain.

use flashmark::core::{
    Extractor, FlashmarkConfig, Imprinter, TestStatus, Verdict, Verifier, Watermark,
    WatermarkRecord,
};
use flashmark::msp430::{Msp430Flash, Msp430Variant};
use flashmark::nor::interface::FlashInterface;
use flashmark::nor::SegmentAddr;
use flashmark::physics::Micros;
use flashmark::supply::{Manufacturer, ScenarioConfig, SupplyChainScenario, SystemIntegrator};

fn config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap()
}

#[test]
fn imprint_extract_roundtrip_on_msp430() {
    let mut chip = Msp430Flash::f5438(0x333);
    let seg = chip.watermark_segment();
    let cfg = config();
    let wm = Watermark::from_ascii("FLASHMARK-DAC20").unwrap();
    Imprinter::new(&cfg).imprint(&mut chip, seg, &wm).unwrap();
    let e = Extractor::new(&cfg)
        .extract(&mut chip, seg, wm.len())
        .unwrap();
    assert_eq!(e.bits(), wm.bits());
}

#[test]
fn roundtrip_works_on_both_device_variants() {
    for variant in [Msp430Variant::F5438, Msp430Variant::F5529] {
        let mut chip = Msp430Flash::new(variant, 0xAB1E);
        let seg = chip.watermark_segment();
        let cfg = config();
        let wm = Watermark::from_ascii("V").unwrap();
        Imprinter::new(&cfg).imprint(&mut chip, seg, &wm).unwrap();
        let e = Extractor::new(&cfg)
            .extract(&mut chip, seg, wm.len())
            .unwrap();
        assert_eq!(e.bits(), wm.bits(), "variant {variant:?}");
    }
}

#[test]
fn record_roundtrip_through_manufacturer_and_verifier() {
    let cfg = config();
    let mut fab = Manufacturer::new(0x7C01, Msp430Variant::F5438, cfg.clone());
    let mut chip = fab.produce(0x1234, TestStatus::Accept).unwrap();
    let verifier = Verifier::new(cfg, 0x7C01);
    let seg = chip.flash.watermark_segment();
    let report = verifier.verify(&mut chip.flash, seg).unwrap();
    assert_eq!(report.verdict, Verdict::Genuine);
    let record = report.record.unwrap();
    assert_eq!(record.manufacturer_id, 0x7C01);
    assert_eq!(record.status, TestStatus::Accept);
}

#[test]
fn watermark_survives_decade_of_storage() {
    // Retention drains stored charge but not wear; extraction reprograms
    // the segment anyway, so a 10-year shelf (or 1000 h at 85 °C) changes
    // nothing.
    let mut chip = Msp430Flash::f5438(0xBA3E);
    let seg = chip.watermark_segment();
    let cfg = config();
    let wm = Watermark::from_ascii("SHELF").unwrap();
    Imprinter::new(&cfg).imprint(&mut chip, seg, &wm).unwrap();

    chip.main_mut().array_mut().bake(10.0 * 8760.0, 25.0);
    chip.main_mut().array_mut().bake(1000.0, 85.0);

    let e = Extractor::new(&cfg)
        .extract(&mut chip, seg, wm.len())
        .unwrap();
    assert_eq!(e.bits(), wm.bits());
}

#[test]
fn extraction_does_not_need_the_content() {
    // The verifier knows only lengths and the window — never the payload.
    // (A raw single-shot extraction may carry a stray bit error; the
    // verifier's window-retry + CRC repair is the production path.)
    let cfg = config();
    let mut fab = Manufacturer::new(0x7C01, Msp430Variant::F5438, cfg.clone());
    let mut chip = fab.produce(0x777, TestStatus::Accept).unwrap();
    let seg = chip.flash.watermark_segment();

    let e = Extractor::new(&cfg)
        .extract(
            &mut chip.flash,
            seg,
            flashmark::core::watermark::RECORD_BITS,
        )
        .unwrap();
    let blind = WatermarkRecord::from_watermark(&e.to_watermark().unwrap());
    let expected = WatermarkRecord {
        manufacturer_id: 0x7C01,
        die_id: 1,
        speed_grade: 3,
        status: TestStatus::Accept,
        year_week: 2004,
    };
    if let Ok(r) = blind {
        assert_eq!(r, expected, "blind extraction decoded a different record");
    }

    let report = Verifier::new(cfg, 0x7C01)
        .verify(&mut chip.flash, seg)
        .unwrap();
    assert_eq!(report.record, Some(expected));
}

#[test]
fn integrator_accepts_genuine_across_seeds() {
    let cfg = config();
    let mut fab = Manufacturer::new(0x7C01, Msp430Variant::F5438, cfg.clone());
    let integrator = SystemIntegrator::new(cfg, 0x7C01).unwrap();
    for seed in 0..8u64 {
        let mut chip = fab.produce(0xA000 + seed, TestStatus::Accept).unwrap();
        let a = integrator.inspect(&mut chip).unwrap();
        assert!(a.accepted, "genuine chip {seed} was flagged: {a:?}");
    }
}

#[test]
fn scenario_outcomes_are_stable_across_seeds() {
    for seed in [0x11u64, 0x22, 0x33, 0x44] {
        let stats = SupplyChainScenario::new(ScenarioConfig::small(seed))
            .run()
            .unwrap();
        assert_eq!(stats.false_negatives(), 0, "seed {seed:#x}: {stats}");
        assert_eq!(stats.false_positives(), 0, "seed {seed:#x}: {stats}");
    }
}

#[test]
fn watermark_segment_is_out_of_code_range() {
    let chip = Msp430Flash::f5438(1);
    let seg = chip.watermark_segment();
    assert_eq!(seg, SegmentAddr::new(chip.geometry().total_segments() - 1));
}
