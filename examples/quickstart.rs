//! Quickstart: imprint a watermark into a simulated MSP430's flash and
//! read it back through the digital interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flashmark::core::{Extractor, FlashmarkConfig, Imprinter, Watermark};
use flashmark::msp430::Msp430Flash;
use flashmark::nor::interface::FlashInterface;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated MSP430F5438; the seed is the chip's identity (process
    // variation derives from it).
    let mut chip = Msp430Flash::f5438(0xC0FFEE);
    let seg = chip.watermark_segment();

    // The manufacturer's operating point: 70 K stress cycles, 7 replicas,
    // accelerated imprint schedule.
    let config = FlashmarkConfig::builder()
        .n_pe(70_000)
        .replicas(7)
        .build()?;

    // Imprint "TC" — the paper's example watermark (Fig. 6).
    let watermark = Watermark::from_ascii("TC")?;
    let report = Imprinter::new(&config).imprint(&mut chip, seg, &watermark)?;
    println!(
        "imprinted {:?} with {} P/E cycles in {:.0} s of simulated chip time",
        watermark.to_ascii().unwrap(),
        report.cycles,
        report.elapsed.get()
    );

    // Extraction needs only the public recipe (tPEW, replica count, length)
    // — not the watermark content.
    let extraction = Extractor::new(&config).extract(&mut chip, seg, watermark.len())?;
    let recovered = extraction.to_watermark()?;
    println!(
        "extracted  {:?} at tPEW = {} (BER {:.2}%, {:.0}% of bits unanimous across replicas)",
        recovered.to_ascii().unwrap_or_else(|| "<non-ascii>".into()),
        extraction.t_pew(),
        extraction.ber_against(&watermark) * 100.0,
        extraction.unanimous_fraction() * 100.0
    );
    assert_eq!(
        recovered, watermark,
        "watermark must survive the round trip"
    );

    // The watermark lives in irreversible wear: erasing and rewriting the
    // segment does not remove it.
    chip.erase_segment(seg)?;
    let again = Extractor::new(&config).extract(&mut chip, seg, watermark.len())?;
    assert_eq!(again.to_watermark()?, watermark);
    println!("after a full erase the watermark still reads back — wear is permanent");
    Ok(())
}
