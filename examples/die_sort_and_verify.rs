//! Die-sort marking and incoming inspection: the paper's headline use case.
//!
//! The manufacturer imprints an accept/reject record into every die; a
//! system integrator later verifies chips without any database or call home.
//! A counterfeiter who gets hold of a *reject* die cannot flip it to
//! "accept" — wear is one-way.
//!
//! ```text
//! cargo run --release --example die_sort_and_verify
//! ```

use flashmark::core::{FlashmarkConfig, TestStatus, Verdict, Verifier};
use flashmark::msp430::Msp430Variant;
use flashmark::supply::counterfeiter::{Attack, EraseAndReprogram, MetadataForge};
use flashmark::supply::Manufacturer;

const TRUSTED_MFG: u16 = 0x7C01;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .build()?;
    let mut fab = Manufacturer::new(TRUSTED_MFG, Msp430Variant::F5438, config.clone());

    // Die sort: one die passes, one fails.
    let mut good_chip = fab.produce(0x61, TestStatus::Accept)?;
    let mut bad_chip = fab.produce(0x62, TestStatus::Reject)?;

    // The reject die leaks out of the packaging site. The counterfeiter
    // forges the plain metadata and rewrites the watermark segment's data.
    MetadataForge.apply(&mut bad_chip)?;
    let blank = vec![0xFFFFu16; 256];
    EraseAndReprogram { pattern: blank }.apply(&mut bad_chip)?;

    // Incoming inspection at the integrator.
    let verifier = Verifier::new(config, TRUSTED_MFG);
    for (name, chip) in [
        ("good chip", &mut good_chip),
        ("laundered reject", &mut bad_chip),
    ] {
        let seg = chip.flash.watermark_segment();
        let report = verifier.verify(&mut chip.flash, seg)?;
        match report.verdict {
            Verdict::Genuine => {
                let r = report.record.expect("genuine implies record");
                println!(
                    "{name}: GENUINE  (manufacturer {:#06x}, die {}, grade {}, week {})",
                    r.manufacturer_id, r.die_id, r.speed_grade, r.year_week
                );
            }
            Verdict::Counterfeit(reason) => {
                println!("{name}: COUNTERFEIT ({reason:?})");
            }
            Verdict::Inconclusive(reason) => {
                // Never treated as genuine: an unjudgeable chip goes back
                // into the inspection queue.
                println!("{name}: INCONCLUSIVE ({reason:?}) — re-inspect");
            }
        }
    }
    Ok(())
}
