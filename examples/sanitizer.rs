//! The flash-protocol sanitizer in action: a clean run, then three injected
//! protocol faults, with the violation reports printed as a firmware
//! developer would see them.
//!
//! ```text
//! cargo run --example sanitizer
//! ```

use flashmark::core::{extract_sanitized, imprint_sanitized, FlashmarkConfig, Watermark};
use flashmark::msp430::Msp430Flash;
use flashmark::nor::{FlashInterface, SegmentAddr, WordAddr};
use flashmark::physics::Micros;
use flashmark::sanitizer::SanitizedFlash;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The reference flows are protocol-clean. ---
    let mut chip = Msp430Flash::f5438(0xC0FFEE);
    let seg = chip.watermark_segment();
    let config = FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(3)
        .build()?;
    let wm = Watermark::from_ascii("TC")?;

    let imprint = imprint_sanitized(&config, &mut chip, seg, &wm)?;
    let extract = extract_sanitized(&config, &mut chip, seg, wm.len())?;
    println!(
        "imprint -> extract: recovered {:?}, imprint clean: {}, extract clean: {}",
        extract.value.to_watermark()?.to_ascii().unwrap_or_default(),
        imprint.is_clean(),
        extract.is_clean()
    );

    // --- 2. Injected faults are caught with backtraces. ---
    let mut flash = SanitizedFlash::new(Msp430Flash::f5438(7)).record_reads(true);
    let seg = SegmentAddr::new(0);
    let word = WordAddr::new(3);

    flash.erase_segment(seg)?;
    flash.program_word(word, 0x1234)?;
    flash.program_word(word, 0x0F0F)?; // overprogram: no erase in between

    flash.read_word(word)?;
    flash.partial_erase(seg, Micros::new(20.0))?; // missing program_all_zero

    let bogus = SegmentAddr::new(9_999);
    let _ = flash.erase_segment(bogus); // out of range; refused AND reported

    println!(
        "\n{} violation(s) from 3 injected faults:",
        flash.violations().len()
    );
    for v in flash.violations() {
        println!("\n{v}");
    }
    Ok(())
}
