//! Flashmark on NAND: the same imprint/extract code that drives the MSP430
//! NOR simulator runs on a simulated SLC NAND part through the
//! `FlashInterface` adapter — substantiating the paper's conclusion that
//! the technique "is applicable broadly to NOR and NAND flash memories".
//!
//! ```text
//! cargo run --release --example nand_roundtrip
//! ```

use flashmark::core::{Extractor, FlashmarkConfig, Imprinter, Watermark};
use flashmark::nand::{NandChip, NandGeometry, NandWordAdapter};
use flashmark::nor::SegmentAddr;
use flashmark::physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small-block SLC NAND chip behind the word/segment adapter: one NAND
    // *block* plays the role of a Flashmark *segment*.
    let chip = NandChip::new(NandGeometry::tiny(), 0x0AD0);
    println!(
        "device: {} ({} cells per block)",
        chip.geometry(),
        chip.geometry().cells_per_block()
    );
    let mut flash = NandWordAdapter::new(chip);

    let config = FlashmarkConfig::builder()
        .n_pe(70_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()?;
    let wm = Watermark::from_ascii("NAND-TOO")?;
    let seg = SegmentAddr::new(0);

    let report = Imprinter::new(&config).imprint(&mut flash, seg, &wm)?;
    println!(
        "imprinted {:?} with {} cycles in {:.0} s (block erase is 2 ms, vs 25 ms on the MSP430 NOR)",
        wm.to_ascii().unwrap(),
        report.cycles,
        report.elapsed.get()
    );

    let extraction = Extractor::new(&config).extract(&mut flash, seg, wm.len())?;
    println!(
        "extracted {:?} with BER {:.2}%",
        extraction.to_watermark()?.to_ascii().unwrap_or_default(),
        extraction.ber_against(&wm) * 100.0
    );
    assert_eq!(extraction.bits(), wm.bits());
    println!(
        "identical Imprinter/Extractor code drove NOR and NAND — FlashInterface abstracts the part"
    );
    Ok(())
}
