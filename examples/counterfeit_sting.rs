//! A full supply-chain sting: a mixed population of genuine chips and every
//! counterfeiting pathway the paper motivates (fall-out dies, recycled
//! chips, clones, re-branded parts, stress-tampered parts) goes through
//! incoming inspection.
//!
//! ```text
//! cargo run --release --example counterfeit_sting
//! ```

use flashmark::supply::{ScenarioConfig, SupplyChainScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ScenarioConfig::small(0x57196);
    config.genuine = 6;
    config.clones = 2;
    config.recycled = 2;

    println!(
        "building population: {} genuine + {} fall-out + {} stress-padded + {} recycled + {} clones + {} rebranded ...",
        config.genuine, config.fallout, config.stress_padded, config.recycled, config.clones, config.rebranded
    );
    let stats = SupplyChainScenario::new(config).run()?;

    println!("\n{stats}\n");
    println!(
        "false positives: {}   false negatives: {}",
        stats.false_positives(),
        stats.false_negatives()
    );
    assert_eq!(
        stats.false_negatives(),
        0,
        "every counterfeit pathway must be caught"
    );
    Ok(())
}
