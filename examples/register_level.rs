//! Driving the flash through the MSP430-style register protocol — what the
//! firmware running on the real microcontroller actually does: password-
//! protected `FCTL` writes, mode bits, dummy writes, and the `EMEX`
//! emergency exit that implements the partial erase.
//!
//! ```text
//! cargo run --release --example register_level
//! ```

use flashmark::nor::registers::{Fctl, RegisterFront, ERASE, FWKEY, WRT};
use flashmark::nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr, WordAddr};
use flashmark::physics::{Micros, PhysicsParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctl = FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(4),
        FlashTimings::msp430(),
        0xF1F1,
    );
    let mut flash = RegisterFront::new(ctl);

    // Power-up state: locked; a write without the password latches KEYV.
    assert!(flash.write_register(Fctl::Fctl3, 0x0000).is_err());
    println!("bad-key register write rejected (KEYV latched), as on real parts");

    // Unlock (clear LOCK with the 0xA5 password), select write mode, and
    // program a word.
    flash.write_register(Fctl::Fctl3, FWKEY)?;
    flash.write_register(Fctl::Fctl1, FWKEY | WRT)?;
    flash.write_word(WordAddr::new(0), 0x5443)?; // "TC"
    println!(
        "programmed word 0 = {:#06x}",
        flash.read_word(WordAddr::new(0))?
    );

    // Fill the segment, then run a partial erase via ERASE + emergency exit.
    for w in 0..256 {
        flash.write_word(WordAddr::new(w), 0x0000)?;
    }
    flash.write_register(Fctl::Fctl1, FWKEY | ERASE)?;
    flash.emergency_exit_after(SegmentAddr::new(0), Micros::new(21.0))?;

    let ones: u32 = (0..256)
        .map(|i| flash.read_word(WordAddr::new(i)).map(u16::count_ones))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .sum();
    println!(
        "after a 21 µs partial erase {ones} of 4096 fresh cells already read erased — \
         the analog wear state is visible through the digital interface"
    );
    Ok(())
}
