//! Device-family characterization: what the manufacturer does once per
//! family to publish the extraction window (paper Section III / Fig. 4-5).
//!
//! ```text
//! cargo run --release --example characterize_device
//! ```

use flashmark::core::{characterize_segment, select_t_pew, SweepSpec};
use flashmark::msp430::Msp430Flash;
use flashmark::nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark::nor::SegmentAddr;
use flashmark::physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chip = Msp430Flash::f5438(0xCAFE);
    let fresh_seg = SegmentAddr::new(10);
    let worn_seg = SegmentAddr::new(11);

    // Pre-condition one segment with 50 K P/E cycles (closed-form fast path).
    let words = vec![0u16; chip.geometry().words_per_segment()];
    chip.bulk_imprint(worn_seg, &words, 50_000, ImprintTiming::Baseline)?;

    // Sweep the partial-erase time on both (Fig. 3 algorithm).
    let sweep = SweepSpec::new(Micros::new(10.0), Micros::new(60.0), Micros::new(2.0))?;
    let fresh = characterize_segment(chip.main_mut(), fresh_seg, &sweep, 3)?;
    let worn = characterize_segment(chip.main_mut(), worn_seg, &sweep, 3)?;

    println!("tPE (µs)   fresh cells_0   50K cells_0");
    for (f, w) in fresh.points.iter().zip(&worn.points) {
        println!(
            "{:>7.0}   {:>13}   {:>11}",
            f.t_pe.get(),
            f.cells_0,
            w.cells_0
        );
    }

    println!(
        "\nfresh segment: erase onset {:?}, all erased by {:?}",
        fresh.onset_time(),
        fresh.all_erased_time()
    );
    println!(
        "50K segment:  all erased by {:?} (often beyond this sweep)",
        worn.all_erased_time()
    );

    // Pick the published extraction window.
    let window = select_t_pew(&fresh, &worn, 100)?;
    println!(
        "\nchosen tPEW = {} separating {}/{} cells ({:.1}%); usable window {} .. {}",
        window.t_pew,
        window.distinguishable,
        window.total,
        window.separation() * 100.0,
        window.window_lo,
        window.window_hi
    );
    Ok(())
}
